// Package ner extracts named entities from short informal messages. It
// implements two recognisers:
//
//   - ExtractInformal: the paper's proposed approach for ill-behaved text,
//     combining gazetteer evidence, ontology cue words, prepositional
//     context and orthographic features, each contributing certainty
//     (RQ2b: "What features can be used for Named Entities extraction in
//     informal short text?").
//   - ExtractTraditional: the classic capitalisation/POS-driven baseline,
//     included so experiment E5 can measure exactly the degradation on
//     informal text the paper predicts (RQ1, RQ2a).
//
// It also parses the vague spatial relation phrases of RQ2d ("north of",
// "in vicinity of", "5 km of") in relations.go.
package ner

import (
	"sort"
	"strings"

	"repro/internal/gazetteer"
	"repro/internal/ontology"
	"repro/internal/text"
	"repro/internal/uncertain"
)

// Type is the kind of entity recognised.
type Type string

// Entity types.
const (
	TypeLocation Type = "location" // toponym resolvable in the gazetteer
	TypeFacility Type = "facility" // hotel, restaurant, station, market …
	TypePerson   Type = "person"   // unresolved capitalised name
)

// Entity is one recognised mention.
type Entity struct {
	Text       string       // surface form as written
	Norm       string       // normalised form
	Type       Type         //
	Start, End int          // token index range [Start, End)
	Confidence uncertain.CF // extraction certainty (RQ2: each result carries its uncertainty)
	// GazetteerIDs lists candidate references when the gazetteer knows the
	// name; disambiguation turns these into a probability distribution.
	GazetteerIDs []int64
	// Concept is the ontology concept for facilities ("hotel",
	// "restaurant"), empty otherwise.
	Concept string
}

// Extractor bundles the resources both recognisers consult.
type Extractor struct {
	Gaz *gazetteer.Gazetteer
	Ont *ontology.Ontology
	// FuzzyDistance is the misspelling tolerance for gazetteer lookup
	// (default 1).
	FuzzyDistance int
}

// NewExtractor returns an extractor over the given gazetteer and ontology.
func NewExtractor(g *gazetteer.Gazetteer, o *ontology.Ontology) *Extractor {
	return &Extractor{Gaz: g, Ont: o, FuzzyDistance: 1}
}

// prepositionCues are words whose following span is likely a place.
var prepositionCues = map[string]bool{
	"in": true, "at": true, "near": true, "to": true, "from": true,
	"into": true, "around": true, "towards": true, "via": true,
}

// candidate is an internal scored span.
type candidate struct {
	span    text.Span
	typ     Type
	cf      uncertain.CF
	gazIDs  []int64
	concept string
}

// ExtractInformal recognises entities in ill-behaved text. It works on
// lowercase, abbreviated, hashtag-ridden input by leaning on gazetteer and
// ontology evidence rather than capitalisation.
func (x *Extractor) ExtractInformal(msg string) []Entity {
	tokens := text.Tokenize(msg)
	return x.ExtractInformalTokens(tokens)
}

// ExtractInformalTokens is ExtractInformal over pre-tokenised input.
func (x *Extractor) ExtractInformalTokens(tokens []text.Token) []Entity {
	var cands []candidate

	// Facility candidates first: spans containing an ontology cue word
	// ("axel hotel", "#movenpick hotel", "fox sports grill").
	cands = append(cands, x.facilityCandidates(tokens)...)

	// Toponym candidates: n-gram spans with gazetteer evidence.
	spans := text.TokenNGramSpans(tokens, 1, 4)
	for _, sp := range spans {
		if spanAllStopwords(tokens, sp) {
			continue
		}
		c, ok := x.toponymCandidate(tokens, sp)
		if ok {
			cands = append(cands, c)
		}
	}

	resolved := resolveOverlaps(cands)
	return toEntities(tokens, resolved)
}

// facilityCandidates finds spans naming facilities via ontology cue words.
// A cue word ("hotel", "grill", "market") anchors the span; adjacent
// non-stopword tokens extend the name leftwards ("Fox Sports Grill") or,
// for "hotel X" patterns, rightwards.
func (x *Extractor) facilityCandidates(tokens []text.Token) []candidate {
	var out []candidate
	for i, tok := range tokens {
		if !isWordish(tok) {
			continue
		}
		w := strings.TrimPrefix(tok.Lower, "#")
		concept, ok := x.Ont.ConceptOf(w)
		if !ok || !x.Ont.IsA(concept, "place") {
			continue
		}
		// Extend left over name-like tokens (at most 3): capitalised words
		// and hashtags always qualify; lowercase words qualify only while
		// the span has no capitalised part yet (the all-lowercase SMS
		// case) and only if they are noun-like — adjectives such as
		// "nice" in "nice hotels" must not join the name.
		start := i
		sawUpper := false
		for start > 0 && i-start < 3 {
			prev := tokens[start-1]
			if !isWordish(prev) {
				break
			}
			pw := strings.TrimPrefix(prev.Lower, "#")
			if text.IsStopword(pw) {
				break
			}
			if _, isCue := x.Ont.ConceptOf(pw); isCue {
				break
			}
			upper := startsUpper(prev.Text) || prev.Kind == text.KindHashtag
			if !upper {
				if sawUpper {
					break
				}
				if tag := text.TagWord(prev, false); tag != text.TagNoun && tag != text.TagProperNoun {
					break
				}
			} else {
				sawUpper = true
			}
			start--
		}
		if start == i {
			// Try extending right instead ("hotel Lola").
			end := i + 1
			for end < len(tokens) && end-i <= 2 {
				next := tokens[end]
				if !isWordish(next) || text.IsStopword(next.Lower) {
					break
				}
				if _, isCue := x.Ont.ConceptOf(next.Lower); isCue {
					break
				}
				// Only extend rightwards over capitalised or hashtag
				// tokens; bare lowercase nouns after the cue are usually
				// not part of a name ("hotel room").
				if !startsUpper(next.Text) && next.Kind != text.KindHashtag {
					break
				}
				end++
			}
			if end == i+1 {
				continue // bare cue word, not a name
			}
			out = append(out, candidate{
				span:    spanOf(tokens, i, end),
				typ:     TypeFacility,
				cf:      facilityConfidence(tokens, i, end),
				concept: concept,
			})
			continue
		}
		end := i + 1
		out = append(out, candidate{
			span:    spanOf(tokens, start, end),
			typ:     TypeFacility,
			cf:      facilityConfidence(tokens, start, end),
			concept: concept,
		})
	}
	return out
}

// facilityConfidence scores a facility span: cue word is strong evidence,
// capitalised or hashtag name parts add more.
func facilityConfidence(tokens []text.Token, start, end int) uncertain.CF {
	cf := uncertain.CF(0.55) // cue word baseline
	for i := start; i < end; i++ {
		if startsUpper(tokens[i].Text) {
			cf = uncertain.Combine(cf, 0.2)
		}
		if tokens[i].Kind == text.KindHashtag {
			cf = uncertain.Combine(cf, 0.25)
		}
	}
	return cf
}

// toponymCandidate scores a span as a location mention.
func (x *Extractor) toponymCandidate(tokens []text.Token, sp text.Span) (candidate, bool) {
	var ids []int64
	var cf uncertain.CF

	// Gazetteer evidence (exact first, then fuzzy).
	if refs := x.Gaz.Lookup(sp.Text); len(refs) > 0 {
		for _, r := range refs {
			ids = append(ids, r.ID)
		}
		cf = 0.6
	} else if x.FuzzyDistance > 0 && len([]rune(sp.Text)) >= 5 {
		ms := x.Gaz.LookupFuzzy(sp.Text, x.FuzzyDistance)
		if len(ms) > 0 {
			for _, r := range ms[0].Entries {
				ids = append(ids, r.ID)
			}
			cf = 0.35 // fuzzy hits are weaker evidence
		}
	}
	if len(ids) == 0 {
		return candidate{}, false
	}

	// Context evidence: preceding preposition.
	if sp.Start > 0 {
		prev := tokens[sp.Start-1]
		if prepositionCues[prev.Lower] {
			cf = uncertain.Combine(cf, 0.25)
		}
	}
	// Orthographic evidence: capitalisation mid-sentence (weak in informal
	// text but still worth something).
	for i := sp.Start; i < sp.End; i++ {
		if startsUpper(tokens[i].Text) && i > 0 {
			cf = uncertain.Combine(cf, 0.1)
			break
		}
	}
	// Penalise single very common words with huge ambiguity but no
	// context: they are usually false positives ("spring", "hill").
	if sp.End-sp.Start == 1 && len(ids) > 50 {
		hasCtx := sp.Start > 0 && prepositionCues[tokens[sp.Start-1].Lower]
		if !hasCtx && !startsUpper(tokens[sp.Start].Text) {
			return candidate{}, false
		}
	}
	return candidate{span: sp, typ: TypeLocation, cf: cf, gazIDs: ids}, true
}

// resolveOverlaps keeps the best-scoring non-overlapping candidates,
// preferring higher confidence, then longer spans. A location fully inside
// a facility span survives as a nested mention (the paper's Template 3
// extracts both "Berlin hotel" and "Berlin").
func resolveOverlaps(cands []candidate) []candidate {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cf != cands[j].cf {
			return cands[i].cf > cands[j].cf
		}
		li, lj := cands[i].span.End-cands[i].span.Start, cands[j].span.End-cands[j].span.Start
		if li != lj {
			return li > lj
		}
		return cands[i].span.Start < cands[j].span.Start
	})
	var kept []candidate
	for _, c := range cands {
		conflict := false
		for _, k := range kept {
			if !spansOverlap(c.span, k.span) {
				continue
			}
			// Allow a location nested inside a kept facility.
			if c.typ == TypeLocation && k.typ == TypeFacility && spanInside(c.span, k.span) {
				continue
			}
			if k.typ == TypeLocation && c.typ == TypeFacility && spanInside(k.span, c.span) {
				continue
			}
			conflict = true
			break
		}
		if !conflict {
			kept = append(kept, c)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].span.Start < kept[j].span.Start })
	return kept
}

func toEntities(tokens []text.Token, cands []candidate) []Entity {
	out := make([]Entity, 0, len(cands))
	for _, c := range cands {
		surface := surfaceText(tokens, c.span.Start, c.span.End)
		out = append(out, Entity{
			Text:         surface,
			Norm:         text.NormalizeName(surface),
			Type:         c.typ,
			Start:        c.span.Start,
			End:          c.span.End,
			Confidence:   c.cf,
			GazetteerIDs: c.gazIDs,
			Concept:      c.concept,
		})
	}
	return out
}

func surfaceText(tokens []text.Token, start, end int) string {
	parts := make([]string, 0, end-start)
	for i := start; i < end; i++ {
		parts = append(parts, strings.TrimPrefix(tokens[i].Text, "#"))
	}
	return strings.Join(parts, " ")
}

func spanOf(tokens []text.Token, start, end int) text.Span {
	parts := make([]string, 0, end-start)
	for i := start; i < end; i++ {
		parts = append(parts, strings.TrimPrefix(tokens[i].Lower, "#"))
	}
	return text.Span{Start: start, End: end, Text: strings.Join(parts, " ")}
}

func spansOverlap(a, b text.Span) bool {
	return a.Start < b.End && b.Start < a.End
}

func spanInside(inner, outer text.Span) bool {
	return inner.Start >= outer.Start && inner.End <= outer.End
}

func spanAllStopwords(tokens []text.Token, sp text.Span) bool {
	for i := sp.Start; i < sp.End; i++ {
		if !text.IsStopword(strings.TrimPrefix(tokens[i].Lower, "#")) {
			return false
		}
	}
	return true
}

func isWordish(t text.Token) bool {
	return t.Kind == text.KindWord || t.Kind == text.KindHashtag
}

func startsUpper(s string) bool {
	for _, r := range s {
		return r >= 'A' && r <= 'Z'
	}
	return false
}
