package ner

import (
	"testing"
)

func TestTraditionalOnFormalText(t *testing.T) {
	x := testExtractor(t)
	// Well-edited text: capitalisation works.
	ents := x.ExtractTraditional("We visited the Axel Hotel in Berlin last summer.")
	if loc := findEntity(ents, TypeLocation, "berlin"); loc == nil {
		t.Errorf("traditional NER missed capitalised Berlin: %+v", ents)
	}
	if fac := findEntity(ents, TypeFacility, "axel hotel"); fac == nil {
		t.Errorf("traditional NER missed Axel Hotel: %+v", ents)
	}
}

func TestTraditionalFailsOnLowercase(t *testing.T) {
	x := testExtractor(t)
	// The paper's claim (RQ1/RQ2a): the capitalisation cue vanishes in
	// informal text, so traditional NER finds nothing.
	ents := x.ExtractTraditional("we visited the axel hotel in berlin last summer")
	if len(ents) != 0 {
		t.Errorf("traditional NER found %+v on lowercase text; expected the documented failure", ents)
	}
	// The informal recogniser recovers both entities from the same input.
	informal := x.ExtractInformal("we visited the axel hotel in berlin last summer")
	if findEntity(informal, TypeLocation, "berlin") == nil {
		t.Error("informal NER missed lowercase berlin")
	}
	if findEntity(informal, TypeFacility, "axel hotel") == nil {
		t.Error("informal NER missed lowercase axel hotel")
	}
}

func TestTraditionalSentenceInitialNotEntity(t *testing.T) {
	x := testExtractor(t)
	// "The" at sentence start must not be an entity; neither should
	// sentence-initial non-gazetteer capitalised words.
	ents := x.ExtractTraditional("The weather was lovely. Nothing else to report.")
	if len(ents) != 0 {
		t.Errorf("false positives: %+v", ents)
	}
}

func TestTraditionalPersonFallback(t *testing.T) {
	x := testExtractor(t)
	ents := x.ExtractTraditional("I met Obama at the conference")
	p := findEntity(ents, TypePerson, "obama")
	if p == nil {
		t.Fatalf("capitalised unknown name not typed person: %+v", ents)
	}
}

func TestTraditionalMultiwordRun(t *testing.T) {
	x := testExtractor(t)
	ents := x.ExtractTraditional("We loved McCormick Schmicks downtown")
	if len(ents) != 1 {
		t.Fatalf("entities = %+v", ents)
	}
	if ents[0].Norm != "mccormick schmicks" {
		t.Errorf("run = %q", ents[0].Norm)
	}
}
