package ner

import (
	"strconv"
	"strings"

	"repro/internal/geo"
	"repro/internal/text"
)

// RelationKind classifies a spatial relation phrase per the paper's
// taxonomy: "topological (ex: within, touches overlap, contains, etc.),
// directional (ex: east of, north west of, front of, etc.), or distance
// relation (ex: 5 km of, 30 min of, etc.)".
type RelationKind string

// Relation kinds.
const (
	RelTopological RelationKind = "topological"
	RelDirectional RelationKind = "directional"
	RelDistance    RelationKind = "distance"
	RelProximity   RelationKind = "proximity" // "near", "in vicinity of"
)

// Relation is one parsed spatial relation phrase. Object names the
// reference entity text that follows the phrase (the anchor), which the
// caller resolves against extracted entities.
type Relation struct {
	Kind RelationKind
	// Direction is the bearing in degrees for directional relations.
	Direction float64
	// DistanceMeters is the stated or implied distance (0 when unstated).
	DistanceMeters float64
	// Fuzzy marks hedged phrases ("a few blocks", "about 5 km", "nearby").
	Fuzzy bool
	// Start/End are token indexes of the whole phrase including object.
	Start, End int
	// Object is the surface text of the reference entity, "" if the phrase
	// was intransitive ("nearby").
	Object string
}

// blocksMeters approximates one city block.
const blocksMeters = 100.0

// minuteMeters approximates one minute of travel ("30 min of") assuming
// urban driving (~500 m/min).
const minuteMeters = 500.0

var unitMeters = map[string]float64{
	"km": 1000, "kilometre": 1000, "kilometres": 1000, "kilometer": 1000,
	"kilometers": 1000, "m": 1, "meter": 1, "meters": 1, "metre": 1,
	"metres": 1, "mi": 1609, "mile": 1609, "miles": 1609,
	"block": blocksMeters, "blocks": blocksMeters,
	"min": minuteMeters, "mins": minuteMeters, "minute": minuteMeters,
	"minutes": minuteMeters, "hr": 60 * minuteMeters, "hour": 60 * minuteMeters,
	"hours": 60 * minuteMeters,
}

var vagueQuantities = map[string]float64{
	"few": 3, "couple": 2, "some": 3, "several": 5,
}

// ParseRelations finds spatial relation phrases in a token stream.
func ParseRelations(tokens []text.Token) []Relation {
	var out []Relation
	for i := 0; i < len(tokens); i++ {
		if r, ok := parseDistanceAt(tokens, i); ok {
			out = append(out, r)
			i = r.End - 1
			continue
		}
		if r, ok := parseDirectionalAt(tokens, i); ok {
			out = append(out, r)
			i = r.End - 1
			continue
		}
		if r, ok := parseProximityAt(tokens, i); ok {
			out = append(out, r)
			i = r.End - 1
			continue
		}
		if r, ok := parseTopologicalAt(tokens, i); ok {
			out = append(out, r)
			i = r.End - 1
			continue
		}
	}
	return out
}

// parseDistanceAt matches "<number><unit> (of|from) X", "<number> <unit>
// (of|from) X" and "a few blocks (north) of X".
func parseDistanceAt(tokens []text.Token, i int) (Relation, bool) {
	fuzzy := false
	qty := 0.0
	unit := ""
	j := i

	// Optional hedging determiner: "a few", "a couple of".
	if j < len(tokens) && tokens[j].Lower == "a" && j+1 < len(tokens) {
		if q, ok := vagueQuantities[tokens[j+1].Lower]; ok {
			qty = q
			fuzzy = true
			j += 2
			if j < len(tokens) && tokens[j].Lower == "of" {
				j++
			}
		}
	}
	if qty == 0 {
		if j >= len(tokens) {
			return Relation{}, false
		}
		tok := tokens[j]
		if tok.Kind != text.KindNumber {
			return Relation{}, false
		}
		n, u, ok := splitNumberUnit(tok.Lower)
		if !ok {
			return Relation{}, false
		}
		qty = n
		unit = u
		j++
		if tokens[j-1].Lower == "about" || (i > 0 && tokens[i-1].Lower == "about") {
			fuzzy = true
		}
	}
	// Unit as its own token ("5 km", "a few blocks").
	if unit == "" {
		if j >= len(tokens) {
			return Relation{}, false
		}
		if _, ok := unitMeters[tokens[j].Lower]; !ok {
			return Relation{}, false
		}
		unit = tokens[j].Lower
		j++
	}
	meters, ok := unitMeters[unit]
	if !ok {
		return Relation{}, false
	}
	dist := qty * meters

	// Optional direction: "a few blocks north of".
	direction := -1.0
	if j < len(tokens) {
		if b, ok := geo.BearingForDirection(tokens[j].Lower); ok {
			direction = b
			j++
		}
	}
	// Connective: "of" / "from" / "to". A directional phrase without a
	// connective is still a relation with an implicit anchor ("McCormick &
	// Schmicks is a few blocks west" — the paper leaves the anchor to
	// discourse context).
	if j >= len(tokens) || (tokens[j].Lower != "of" && tokens[j].Lower != "from" && tokens[j].Lower != "to") {
		if direction >= 0 {
			return Relation{
				Kind:           RelDirectional,
				Direction:      direction,
				DistanceMeters: dist,
				Fuzzy:          true,
				Start:          i,
				End:            j,
			}, true
		}
		return Relation{}, false
	}
	j++
	obj, objEnd := grabObject(tokens, j)
	r := Relation{
		Kind:           RelDistance,
		DistanceMeters: dist,
		Fuzzy:          fuzzy || unit == "blocks" || unit == "block" || strings.HasPrefix(unit, "min") || strings.HasPrefix(unit, "hour") || unit == "hr",
		Start:          i,
		End:            objEnd,
		Object:         obj,
	}
	if direction >= 0 {
		r.Kind = RelDirectional
		r.Direction = direction
	}
	return r, true
}

// parseDirectionalAt matches "<direction> of X" and "to the <direction> of X".
func parseDirectionalAt(tokens []text.Token, i int) (Relation, bool) {
	j := i
	// Optional "to the".
	if j+1 < len(tokens) && tokens[j].Lower == "to" && tokens[j+1].Lower == "the" {
		j += 2
	}
	if j >= len(tokens) {
		return Relation{}, false
	}
	b, ok := geo.BearingForDirection(tokens[j].Lower)
	if !ok {
		return Relation{}, false
	}
	j++
	if j >= len(tokens) || tokens[j].Lower != "of" {
		return Relation{}, false
	}
	j++
	obj, objEnd := grabObject(tokens, j)
	if obj == "" {
		return Relation{}, false
	}
	return Relation{
		Kind:      RelDirectional,
		Direction: b,
		Fuzzy:     true, // bare directions are inherently vague (RQ2d)
		Start:     i,
		End:       objEnd,
		Object:    obj,
	}, true
}

// parseProximityAt matches "near X", "nearby", "close to X",
// "in the vicinity of X".
func parseProximityAt(tokens []text.Token, i int) (Relation, bool) {
	low := tokens[i].Lower
	j := i
	switch {
	case low == "near":
		j++
	case low == "nearby":
		return Relation{Kind: RelProximity, Fuzzy: true, Start: i, End: i + 1}, true
	case low == "close" && j+1 < len(tokens) && tokens[j+1].Lower == "to":
		j += 2
	case low == "in" && matchWords(tokens, j+1, "the", "vicinity", "of"):
		j += 4
	case low == "in" && matchWords(tokens, j+1, "vicinity", "of"):
		j += 3
	default:
		return Relation{}, false
	}
	obj, objEnd := grabObject(tokens, j)
	if obj == "" {
		return Relation{}, false
	}
	return Relation{Kind: RelProximity, Fuzzy: true, Start: i, End: objEnd, Object: obj}, true
}

// parseTopologicalAt matches containment ("within X", "inside X") and
// adjacency ("next to X", "beside X", "adjacent to X", "touching X",
// "in front of X" — the paper's scenario message says "Lola is next to the
// restaurant"). Plain "in" is far too common to treat as a relation by
// itself; containment via "in" is handled by the extraction templates'
// location logic instead.
func parseTopologicalAt(tokens []text.Token, i int) (Relation, bool) {
	low := tokens[i].Lower
	j := i
	adjacent := false
	switch {
	case low == "within" || low == "inside":
		j++
	case low == "next" && matchWords(tokens, j+1, "to"):
		j += 2
		adjacent = true
	case low == "beside" || low == "touching" || low == "adjoining":
		j++
		adjacent = true
	case low == "adjacent" && matchWords(tokens, j+1, "to"):
		j += 2
		adjacent = true
	case low == "in" && matchWords(tokens, j+1, "front", "of"):
		j += 3
		adjacent = true
	default:
		return Relation{}, false
	}
	obj, objEnd := grabObject(tokens, j)
	if obj == "" {
		return Relation{}, false
	}
	r := Relation{Kind: RelTopological, Start: i, End: objEnd, Object: obj}
	if adjacent {
		// Adjacency pins the referent much tighter than containment;
		// record the implied scale so RegionFor can use it, and mark it
		// fuzzy — "next to" carries no exact bound.
		r.Fuzzy = true
		r.DistanceMeters = 50
	}
	return r, true
}

// grabObject collects up to 4 word tokens after a connective, skipping a
// leading determiner/possessive, stopping at punctuation or a verb-ish
// stopword. Returns the surface text and the end token index.
func grabObject(tokens []text.Token, j int) (string, int) {
	if j < len(tokens) && (tokens[j].Lower == "the" || tokens[j].Lower == "your" ||
		tokens[j].Lower == "my" || tokens[j].Lower == "our" || tokens[j].Lower == "a" || tokens[j].Lower == "an") {
		j++
	}
	start := j
	for j < len(tokens) && j-start < 4 {
		tok := tokens[j]
		if !isWordish(tok) && tok.Kind != text.KindNumber {
			break
		}
		lw := strings.TrimPrefix(tok.Lower, "#")
		if j > start && text.IsStopword(lw) {
			break
		}
		j++
	}
	if j == start {
		return "", j
	}
	parts := make([]string, 0, j-start)
	for k := start; k < j; k++ {
		parts = append(parts, strings.TrimPrefix(tokens[k].Text, "#"))
	}
	return strings.Join(parts, " "), j
}

func matchWords(tokens []text.Token, i int, words ...string) bool {
	if i+len(words) > len(tokens) {
		return false
	}
	for k, w := range words {
		if tokens[i+k].Lower != w {
			return false
		}
	}
	return true
}

// splitNumberUnit splits "5km" into (5, "km"); returns ok=false when the
// token has no digits. A bare number returns unit "".
func splitNumberUnit(s string) (float64, string, bool) {
	s = strings.TrimLeft(s, "$€£")
	idx := len(s)
	for i, r := range s {
		if !(r >= '0' && r <= '9' || r == '.' || r == ',') {
			idx = i
			break
		}
	}
	numPart := strings.ReplaceAll(s[:idx], ",", "")
	if numPart == "" {
		return 0, "", false
	}
	n, err := strconv.ParseFloat(numPart, 64)
	if err != nil {
		return 0, "", false
	}
	return n, s[idx:], true
}

// RegionFor converts a resolved relation into a fuzzy region around the
// anchor point, the geometric grounding of RQ2d ("How to infer about the
// referred location from relative references?").
func (r Relation) RegionFor(anchor geo.Point) geo.FuzzyRegion {
	switch r.Kind {
	case RelDirectional:
		reg := geo.NewDirectionRegion(anchor, r.Direction)
		if r.DistanceMeters > 0 {
			reg.MaxMeters = r.DistanceMeters
		}
		return reg
	case RelDistance:
		return geo.NewDistanceRegion(anchor, r.DistanceMeters)
	case RelProximity:
		return geo.NewNearRegion(anchor, 1000)
	default: // topological
		if r.DistanceMeters > 0 {
			// Adjacency ("next to", "beside"): a tight band around
			// the anchor.
			return geo.NewNearRegion(anchor, r.DistanceMeters)
		}
		return geo.NewNearRegion(anchor, 5000)
	}
}
