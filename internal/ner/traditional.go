package ner

import (
	"repro/internal/text"
	"repro/internal/uncertain"
)

// ExtractTraditional is the classic newswire-style recogniser: maximal runs
// of mid-sentence capitalised tokens (proper-noun POS tags) become
// entities, typed by gazetteer membership. On well-edited text it performs
// respectably; on lowercase informal text it collapses — which is the
// paper's central claim about applying existing IE to ill-behaved streams
// (RQ1), quantified in experiment E5.
func (x *Extractor) ExtractTraditional(msg string) []Entity {
	tokens := text.Tokenize(msg)
	return x.ExtractTraditionalTokens(tokens)
}

// ExtractTraditionalTokens is ExtractTraditional over pre-tokenised input.
func (x *Extractor) ExtractTraditionalTokens(tokens []text.Token) []Entity {
	tags := text.TagTokens(tokens)
	var out []Entity
	i := 0
	for i < len(tokens) {
		if tags[i] != text.TagProperNoun {
			i++
			continue
		}
		j := i
		for j < len(tokens) && tags[j] == text.TagProperNoun {
			j++
		}
		surface := surfaceText(tokens, i, j)
		norm := text.NormalizeName(surface)
		ent := Entity{
			Text:       surface,
			Norm:       norm,
			Start:      i,
			End:        j,
			Confidence: uncertain.CF(0.5),
		}
		if refs := x.Gaz.Lookup(norm); len(refs) > 0 {
			ent.Type = TypeLocation
			for _, r := range refs {
				ent.GazetteerIDs = append(ent.GazetteerIDs, r.ID)
			}
			ent.Confidence = uncertain.Combine(ent.Confidence, 0.2)
		} else if concept, ok := x.lastCueConcept(tokens, i, j); ok {
			ent.Type = TypeFacility
			ent.Concept = concept
		} else {
			ent.Type = TypePerson
		}
		out = append(out, ent)
		i = j
	}
	return out
}

// lastCueConcept reports the ontology concept if the span's last word, or
// the word right after the span, is a facility cue ("Axel Hotel" /
// "Movenpick hotel").
func (x *Extractor) lastCueConcept(tokens []text.Token, start, end int) (string, bool) {
	if end-start > 0 {
		if c, ok := x.Ont.ConceptOf(tokens[end-1].Lower); ok && x.Ont.IsA(c, "place") {
			return c, true
		}
	}
	if end < len(tokens) {
		if c, ok := x.Ont.ConceptOf(tokens[end].Lower); ok && x.Ont.IsA(c, "place") {
			return c, true
		}
	}
	return "", false
}
