// Package persist is the durability subsystem: a checkpoint manager
// that writes the probabilistic store's snapshot to an atomic, fsynced,
// rotated file set under a data directory, and restores the newest
// valid checkpoint at boot. Together with the message queue's
// write-ahead log it closes the paper's deployment gap — a long-running
// service accumulating crowd knowledge must survive a restart:
//
//   - Checkpoint writes temp → fsync → rename, then updates a MANIFEST
//     (itself written atomically) naming the latest valid checkpoint,
//     then prunes all but the newest N checkpoints. A crash mid-write
//     leaves only a *.tmp file that recovery ignores.
//   - Recover restores the newest checkpoint that validates: the
//     manifest's entry is tried first (size and CRC verified before a
//     byte reaches the store), then a directory scan newest-to-oldest
//     backstops a missing or corrupt manifest. Corrupt or partial
//     checkpoints are logged and skipped, never trusted.
//
// Each checkpoint records the queue WAL's log sequence number captured
// just before the snapshot was taken, so recovery can replay exactly
// the messages acknowledged after the image — re-integration is safe
// because integration's find-duplicate-then-merge folds a replayed
// message into its existing record instead of duplicating it.
package persist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Checkpoint metric families: how long images take, how big they are,
// and how often they succeed or fail — the running system's view of the
// durability loop EXPERIMENTS only measured offline.
var (
	mCheckpointSeconds = obs.Default().Histogram("neogeo_checkpoint_seconds",
		"Checkpoint wall time, snapshot through durable publish.", nil).With()
	mCheckpointBytes = obs.Default().Histogram("neogeo_checkpoint_bytes",
		"Published checkpoint image size in bytes.",
		obs.ExpBuckets(1024, 4, 10)).With()
	mCheckpointTotal = obs.Default().Counter("neogeo_checkpoint_total",
		"Checkpoint attempts by result.", "result")
	checkpointOK  = mCheckpointTotal.With("ok")
	checkpointErr = mCheckpointTotal.With("error")
)

// Snapshotter is the slice of the store the manager persists;
// *shard.Store (and *xmldb.DB) satisfy it.
type Snapshotter interface {
	Snapshot(w io.Writer) error
	Restore(r io.Reader) error
}

// fileMagic heads every checkpoint file; the sequence number and the
// queue-WAL LSN follow on the same line so recovery can order files and
// resume the log without a manifest.
const fileMagic = "neogeo-checkpoint v1"

// manifestName is the pointer file naming the latest valid checkpoint.
const manifestName = "MANIFEST"

// filePrefix/fileSuffix frame checkpoint file names:
// checkpoint-<seq 16 digits>.ckpt.
const (
	filePrefix = "checkpoint-"
	fileSuffix = ".ckpt"
	tmpSuffix  = ".tmp"
)

// Info describes one checkpoint.
type Info struct {
	// Seq is the checkpoint's monotonic sequence number.
	Seq uint64 `json:"seq"`
	// LSN is the queue WAL's log sequence number captured before the
	// snapshot: messages acknowledged after it are not guaranteed to be
	// in the image and must be re-integrated on recovery.
	LSN int64 `json:"lsn"`
	// File is the checkpoint's file name within the data directory.
	File string `json:"file"`
	// Size and CRC fingerprint the complete file; recovery refuses a
	// manifest entry whose file no longer matches.
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc32"`
	// Created is the checkpoint's wall-clock write time.
	Created time.Time `json:"created"`
}

// Stats is the manager's health snapshot, surfaced by the serving
// layer's /v1/stats and /healthz.
type Stats struct {
	// Count is the number of checkpoints written by this manager (this
	// process; recovered checkpoints do not count).
	Count int
	// Last describes the newest valid checkpoint — written or
	// recovered — nil when none exists.
	Last *Info
	// LastError is the most recent Checkpoint attempt's failure message,
	// cleared by the next success — what /healthz's checkpoint_stale
	// signal watches.
	LastError string
}

// Manager writes and recovers checkpoints under one data directory.
// All methods are safe for concurrent use; checkpoints serialize.
type Manager struct {
	dir    string
	retain int
	clock  func() time.Time
	logf   func(format string, args ...any)

	mu      sync.Mutex
	seq     uint64 // highest sequence number seen or written
	count   int    // checkpoints written this process
	last    *Info  // newest valid checkpoint
	lastErr string // most recent Checkpoint failure, "" after a success
}

// Option configures a Manager.
type Option func(*Manager)

// WithRetain keeps the newest n checkpoint files after each write
// (default 3, minimum 1 — the newest is never pruned).
func WithRetain(n int) Option {
	return func(m *Manager) { m.retain = n }
}

// WithClock overrides the time source (tests).
func WithClock(clock func() time.Time) Option {
	return func(m *Manager) { m.clock = clock }
}

// WithLogger routes skip/prune diagnostics to logf (default: warn
// lines on slog.Default()).
func WithLogger(logf func(format string, args ...any)) Option {
	return func(m *Manager) { m.logf = logf }
}

// slogf renders printf-style diagnostics onto the process's structured
// logger — the default sink after the slog migration.
func slogf(format string, args ...any) {
	slog.Warn(fmt.Sprintf(format, args...))
}

// NewManager opens (creating if needed) the data directory and resumes
// sequence numbering from the checkpoints already in it, so a restarted
// process never reuses a sequence number.
func NewManager(dir string, opts ...Option) (*Manager, error) {
	if dir == "" {
		return nil, fmt.Errorf("persist: empty data directory")
	}
	m := &Manager{dir: dir, retain: 3, clock: time.Now, logf: slogf}
	for _, o := range opts {
		o(m)
	}
	if m.retain < 1 {
		m.retain = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating data directory: %w", err)
	}
	for _, seq := range m.listSeqs() {
		if seq > m.seq {
			m.seq = seq
		}
	}
	return m, nil
}

// Dir returns the manager's data directory.
func (m *Manager) Dir() string { return m.dir }

// Stats returns the manager's health snapshot.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{Count: m.count, LastError: m.lastErr}
	if m.last != nil {
		info := *m.last
		st.Last = &info
	}
	return st
}

// Checkpoint writes one checkpoint of s, tagged with the queue WAL's
// lsn, and returns its Info. The write is atomic: the snapshot lands in
// a temp file that is fsynced and renamed into place before the
// manifest (also atomically replaced) points at it, so a crash at any
// instant leaves the previous checkpoint authoritative. Old checkpoints
// beyond the retention count are pruned afterwards.
func (m *Manager) Checkpoint(s Snapshotter, lsn int64) (Info, error) {
	//lint:ignore ctxflow compat wrapper for ctx-less callers; CheckpointContext is the cancellable path
	return m.CheckpointContext(context.Background(), s, lsn)
}

// spanCheckpoint names the durability span (a bounded constant).
const spanCheckpoint = "checkpoint"

// CheckpointContext is Checkpoint carrying the caller's context so the
// write appears as a span on the request or background timeline that
// triggered it, annotated with the image size and WAL position.
func (m *Manager) CheckpointContext(ctx context.Context, s Snapshotter, lsn int64) (Info, error) {
	_, sp := obs.StartSpan(ctx, spanCheckpoint)
	start := time.Now()
	info, err := m.checkpoint(s, lsn)
	mCheckpointSeconds.Since(start)
	sp.SetAttr("lsn", strconv.FormatInt(lsn, 10))
	if err == nil {
		sp.SetAttr("bytes", strconv.FormatInt(info.Size, 10))
	}
	sp.SetError(err)
	sp.End()
	m.mu.Lock()
	if err != nil {
		checkpointErr.Inc()
		m.lastErr = err.Error()
	} else {
		checkpointOK.Inc()
		mCheckpointBytes.Observe(float64(info.Size))
		m.lastErr = ""
	}
	m.mu.Unlock()
	return info, err
}

// checkpoint is Checkpoint's locked body; the wrapper records metrics
// and the last-attempt error outside the critical section.
func (m *Manager) checkpoint(s Snapshotter, lsn int64) (Info, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	seq := m.seq + 1
	name := fmt.Sprintf("%s%016d%s", filePrefix, seq, fileSuffix)
	final := filepath.Join(m.dir, name)
	tmp := final + tmpSuffix

	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return Info{}, fmt.Errorf("persist: checkpoint %d: %w", seq, err)
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<20)
	if _, err := fmt.Fprintf(bw, "%s seq=%d lsn=%d\n", fileMagic, seq, lsn); err != nil {
		f.Close()
		os.Remove(tmp)
		return Info{}, fmt.Errorf("persist: checkpoint %d: header: %w", seq, err)
	}
	if err := s.Snapshot(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return Info{}, fmt.Errorf("persist: checkpoint %d: snapshot: %w", seq, err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return Info{}, fmt.Errorf("persist: checkpoint %d: %w", seq, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return Info{}, fmt.Errorf("persist: checkpoint %d: sync: %w", seq, err)
	}
	size, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return Info{}, fmt.Errorf("persist: checkpoint %d: %w", seq, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return Info{}, fmt.Errorf("persist: checkpoint %d: close: %w", seq, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return Info{}, fmt.Errorf("persist: checkpoint %d: publish: %w", seq, err)
	}
	if err := m.syncDir(); err != nil {
		return Info{}, fmt.Errorf("persist: checkpoint %d: %w", seq, err)
	}

	info := Info{
		Seq:     seq,
		LSN:     lsn,
		File:    name,
		Size:    size,
		CRC:     crc.Sum32(),
		Created: m.clock(),
	}
	if err := m.writeManifest(info); err != nil {
		// The checkpoint file itself is durable and the directory scan
		// will find it; only the fast path is degraded.
		m.logf("persist: manifest update failed (checkpoint %d still recoverable by scan): %v", seq, err)
	}
	m.seq = seq
	m.count++
	m.last = &info
	m.prune()
	return info, nil
}

// Recover restores the newest valid checkpoint into s and returns its
// Info, or nil when the directory holds no usable checkpoint. The
// manifest's entry is tried first, fingerprint-verified; on any
// mismatch recovery falls back to scanning checkpoint files newest to
// oldest, skipping (and logging) everything that fails validation —
// the store is only modified by a checkpoint that restores cleanly.
func (m *Manager) Recover(s Snapshotter) (*Info, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	tried := make(map[string]bool)
	if info, err := m.readManifest(); err == nil && info != nil {
		tried[info.File] = true
		if err := m.restoreFile(s, true, info); err != nil {
			m.logf("persist: manifest checkpoint %s unusable, falling back to scan: %v", info.File, err)
		} else {
			m.adopt(info)
			return info, nil
		}
	} else if err != nil {
		m.logf("persist: unreadable manifest, falling back to scan: %v", err)
	}

	seqs := m.listSeqs()
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs {
		name := fmt.Sprintf("%s%016d%s", filePrefix, seq, fileSuffix)
		if tried[name] {
			continue
		}
		info := &Info{File: name}
		if err := m.restoreFile(s, false, info); err != nil {
			m.logf("persist: skipping corrupt checkpoint %s: %v", name, err)
			continue
		}
		m.adopt(info)
		return info, nil
	}
	return nil, nil
}

// adopt records a recovered checkpoint as the manager's newest.
func (m *Manager) adopt(info *Info) {
	if info.Seq > m.seq {
		m.seq = info.Seq
	}
	m.last = info
}

// restoreFile parses, verifies and restores the checkpoint file info
// names, filling in info's seq, lsn and (when scanning) fingerprint
// from the file. When verify is true the file must match info's size
// and CRC before a byte reaches the store; the verified bytes are then
// restored from memory rather than read a second time.
func (m *Manager) restoreFile(s Snapshotter, verify bool, info *Info) error {
	path := filepath.Join(m.dir, info.File)
	var src io.Reader
	if verify {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if int64(len(data)) != info.Size {
			return fmt.Errorf("size %d, manifest says %d", len(data), info.Size)
		}
		if got := crc32.ChecksumIEEE(data); got != info.CRC {
			return fmt.Errorf("crc %08x, manifest says %08x", got, info.CRC)
		}
		src = bytes.NewReader(data)
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		// Fingerprint the scanned file so the adopted Info is complete;
		// the file's mtime stands in for the write time the missing
		// manifest would have recorded.
		crc := crc32.NewIEEE()
		n, err := io.Copy(crc, f)
		if err != nil {
			return err
		}
		info.Size, info.CRC = n, crc.Sum32()
		if fi, err := f.Stat(); err == nil {
			info.Created = fi.ModTime()
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		src = f
	}
	br := bufio.NewReaderSize(src, 1<<20)
	header, err := br.ReadString('\n')
	if err != nil {
		return fmt.Errorf("reading header: %w", err)
	}
	var hseq uint64
	var hlsn int64
	if _, err := fmt.Sscanf(header, fileMagic+" seq=%d lsn=%d\n", &hseq, &hlsn); err != nil {
		return fmt.Errorf("bad header %q", strings.TrimSpace(header))
	}
	info.Seq, info.LSN = hseq, hlsn
	// The store validates the whole image before replacing anything, so
	// a corrupt payload leaves it untouched and the caller can try an
	// older checkpoint.
	if err := s.Restore(br); err != nil {
		return err
	}
	return nil
}

// writeManifest atomically replaces the manifest with one naming info.
func (m *Manager) writeManifest(info Info) error {
	data, err := json.Marshal(info)
	if err != nil {
		return err
	}
	path := filepath.Join(m.dir, manifestName)
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return m.syncDir()
}

// readManifest returns the manifest's entry, nil when no manifest
// exists yet.
func (m *Manager) readManifest() (*Info, error) {
	data, err := os.ReadFile(filepath.Join(m.dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var info Info
	if err := json.Unmarshal(data, &info); err != nil {
		return nil, fmt.Errorf("persist: corrupt manifest: %w", err)
	}
	if info.File == "" {
		return nil, fmt.Errorf("persist: manifest names no file")
	}
	return &info, nil
}

// listSeqs returns the sequence numbers of every well-named checkpoint
// file in the directory, unordered.
func (m *Manager) listSeqs() []uint64 {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, filePrefix+"%d"+fileSuffix, &seq); err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

// prune removes checkpoint files beyond the retention count (newest
// kept) and any stale temp files from interrupted writes.
func (m *Manager) prune() {
	seqs := m.listSeqs()
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for i, seq := range seqs {
		if i < m.retain {
			continue
		}
		name := fmt.Sprintf("%s%016d%s", filePrefix, seq, fileSuffix)
		if err := os.Remove(filepath.Join(m.dir, name)); err != nil {
			m.logf("persist: pruning %s: %v", name, err)
		}
	}
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			if err := os.Remove(filepath.Join(m.dir, e.Name())); err != nil {
				m.logf("persist: removing stale temp %s: %v", e.Name(), err)
			}
		}
	}
}

// syncDir fsyncs the data directory so renames are durable.
func (m *Manager) syncDir() error {
	d, err := os.Open(m.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
