package persist

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// blobStore is a minimal Snapshotter: its state is one string, its
// snapshot format self-identifies with a prefix, and Restore — like the
// real store — validates the whole image before mutating anything.
type blobStore struct {
	state string
}

func (b *blobStore) Snapshot(w io.Writer) error {
	_, err := fmt.Fprintf(w, "blob:%s", b.state)
	return err
}

func (b *blobStore) Restore(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	s := string(data)
	if !strings.HasPrefix(s, "blob:") {
		return fmt.Errorf("blobStore: not a blob snapshot")
	}
	b.state = strings.TrimPrefix(s, "blob:")
	return nil
}

func newTestManager(t *testing.T, dir string, opts ...Option) *Manager {
	t.Helper()
	opts = append([]Option{WithLogger(t.Logf)}, opts...)
	m, err := NewManager(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, dir)

	info, err := m.Checkpoint(&blobStore{state: "v1"}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 || info.LSN != 42 {
		t.Fatalf("info = %+v, want seq 1 lsn 42", info)
	}
	if st := m.Stats(); st.Count != 1 || st.Last == nil || st.Last.Seq != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// A fresh manager (a restarted process) recovers the image and the
	// LSN.
	m2 := newTestManager(t, dir)
	var got blobStore
	rec, err := m2.Recover(&got)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("recovered nothing")
	}
	if got.state != "v1" || rec.LSN != 42 || rec.Seq != 1 {
		t.Fatalf("recovered %q, info %+v", got.state, rec)
	}
	// Sequence numbering resumes past the recovered checkpoint.
	info2, err := m2.Checkpoint(&blobStore{state: "v2"}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Seq != 2 {
		t.Fatalf("next seq = %d, want 2", info2.Seq)
	}
}

func TestRecoverEmptyDirectory(t *testing.T) {
	m := newTestManager(t, t.TempDir())
	var got blobStore
	rec, err := m.Recover(&got)
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatalf("recovered %+v from empty directory", rec)
	}
}

// TestRecoverSkipsCorruptNewest corrupts the newest checkpoint in three
// different ways; recovery must fall back to the older valid one each
// time without touching the store with corrupt bytes.
func TestRecoverSkipsCorruptNewest(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated payload", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage payload", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte(fileMagic+" seq=2 lsn=7\ngarbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad header", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not a checkpoint\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			m := newTestManager(t, dir)
			if _, err := m.Checkpoint(&blobStore{state: "old"}, 10); err != nil {
				t.Fatal(err)
			}
			newest, err := m.Checkpoint(&blobStore{state: "new"}, 20)
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, filepath.Join(dir, newest.File))

			m2 := newTestManager(t, dir)
			got := blobStore{state: "live"}
			rec, err := m2.Recover(&got)
			if err != nil {
				t.Fatal(err)
			}
			if rec == nil || rec.Seq != 1 {
				t.Fatalf("recovered %+v, want seq 1", rec)
			}
			if got.state != "old" || rec.LSN != 10 {
				t.Fatalf("state %q lsn %d, want old/10", got.state, rec.LSN)
			}
		})
	}
}

// TestRecoverScanWithoutManifest: a deleted manifest must not orphan
// the checkpoints — the directory scan finds the newest.
func TestRecoverScanWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, dir)
	if _, err := m.Checkpoint(&blobStore{state: "v1"}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Checkpoint(&blobStore{state: "v2"}, 2); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, dir)
	var got blobStore
	rec, err := m2.Recover(&got)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Seq != 2 || got.state != "v2" {
		t.Fatalf("recovered %+v state %q, want seq 2 / v2", rec, got.state)
	}
}

// TestRecoverManifestMismatch: a manifest whose fingerprint no longer
// matches its file (bit rot) must not be trusted; the scan still
// recovers whatever validates.
func TestRecoverManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, dir)
	if _, err := m.Checkpoint(&blobStore{state: "v1"}, 5); err != nil {
		t.Fatal(err)
	}
	info, err := m.Checkpoint(&blobStore{state: "v2"}, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Flip payload bytes without changing the size: CRC check must
	// catch it, and the scan fallback must reject it too (payload no
	// longer parses), landing on checkpoint 1.
	path := filepath.Join(dir, info.File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(data[len(data)-4:], "XXXX")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, dir)
	var got blobStore
	rec, err := m2.Recover(&got)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Seq != 1 || got.state != "v1" {
		t.Fatalf("recovered %+v state %q, want seq 1 / v1", rec, got.state)
	}
}

// Corrupting the blob payload while keeping a valid header must fail
// blobStore's own validation — guard that the fake actually validates,
// since TestRecoverManifestMismatch depends on it.
func TestBlobStoreValidates(t *testing.T) {
	b := blobStore{state: "live"}
	if err := b.Restore(strings.NewReader("blobXXXX")); err == nil {
		t.Fatal("restore accepted garbage")
	}
	if b.state != "live" {
		t.Fatalf("failed restore mutated state to %q", b.state)
	}
}

func TestRetentionPrunesOldCheckpoints(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, dir, WithRetain(2))
	for i := 1; i <= 5; i++ {
		if _, err := m.Checkpoint(&blobStore{state: fmt.Sprintf("v%d", i)}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	seqs := m.listSeqs()
	if len(seqs) != 2 {
		t.Fatalf("%d checkpoint files retained, want 2 (%v)", len(seqs), seqs)
	}
	for _, seq := range seqs {
		if seq != 4 && seq != 5 {
			t.Fatalf("retained seq %d, want only 4 and 5", seq)
		}
	}
	var got blobStore
	rec, err := newTestManager(t, dir).Recover(&got)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || got.state != "v5" {
		t.Fatalf("recovered %+v %q, want v5", rec, got.state)
	}
}

// TestStaleTempCleaned: an interrupted write's temp file is invisible
// to recovery and removed by the next successful checkpoint.
func TestStaleTempCleaned(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, filePrefix+"0000000000000009"+fileSuffix+tmpSuffix)
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, dir)
	var got blobStore
	if rec, err := m.Recover(&got); err != nil || rec != nil {
		t.Fatalf("recover = %+v, %v; want nothing", rec, err)
	}
	if _, err := m.Checkpoint(&blobStore{state: "v1"}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived the checkpoint: %v", err)
	}
}

func TestClockStampsCreated(t *testing.T) {
	now := time.Date(2011, 4, 1, 9, 0, 0, 0, time.UTC)
	m := newTestManager(t, t.TempDir(), WithClock(func() time.Time { return now }))
	info, err := m.Checkpoint(&blobStore{state: "v"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Created.Equal(now) {
		t.Fatalf("created = %v, want %v", info.Created, now)
	}
}
