package qa

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/extract"
	"repro/internal/gazetteer"
	"repro/internal/geo"
	"repro/internal/integrate"
	"repro/internal/kb"
	"repro/internal/ontology"
	"repro/internal/xmldb"
)

type world struct {
	gaz *gazetteer.Gazetteer
	ont *ontology.Ontology
	kb  *kb.KB
	db  *xmldb.DB
	ie  *extract.Service
	di  *integrate.Service
	qa  *Service
}

var t0 = time.Date(2011, 4, 1, 9, 0, 0, 0, time.UTC)

func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{gaz: gazetteer.New(), kb: kb.New(), db: xmldb.New()}
	add := func(name string, lat, lon float64, country string, pop int64) {
		t.Helper()
		if _, err := w.gaz.Add(gazetteer.Entry{
			Name: name, Location: geo.Point{Lat: lat, Lon: lon},
			Feature: gazetteer.FeatureCity, Country: country, Population: pop,
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("Berlin", 52.52, 13.405, "DE", 3_700_000)
	add("Berlin", 44.47, -71.18, "US", 10_000)
	add("Paris", 48.85, 2.35, "FR", 2_100_000)
	add("Nairobi", -1.29, 36.82, "KE", 4_400_000)
	w.ont = ontology.New()
	w.ont.LoadContainment(w.gaz)
	var err error
	if w.ie, err = extract.NewService(w.kb, w.gaz, w.ont); err != nil {
		t.Fatal(err)
	}
	if w.di, err = integrate.NewService(w.kb, w.db); err != nil {
		t.Fatal(err)
	}
	if w.qa, err = NewService(w.db, w.kb, w.gaz, w.ont); err != nil {
		t.Fatal(err)
	}
	return w
}

// ingest runs a message through IE and DI.
func (w *world) ingest(t *testing.T, msg, source string) {
	t.Helper()
	ex, err := w.ie.Extract(context.Background(), msg, source, t0)
	if err != nil {
		t.Fatalf("extract %q: %v", msg, err)
	}
	for _, tpl := range ex.Templates {
		if _, err := w.di.Integrate(tpl); err != nil {
			t.Fatalf("integrate %q: %v", msg, err)
		}
	}
}

func TestPaperScenarioEndToEndQA(t *testing.T) {
	w := newWorld(t)
	// The paper's three informative messages.
	w.ingest(t, "berlin has some nice hotels i just loved the hetero friendly love that word Axel Hotel in Berlin.", "u1")
	w.ingest(t, "Good morning Berlin. The sun is out!!!! Very impressed by the customer service at #movenpick hotel in berlin. Well done guys!", "u2")
	w.ingest(t, "In Berlin hotel room, nice enough, weather grim however", "u3")

	// The paper's request.
	ex, err := w.ie.Extract(context.Background(), "Can anyone recommend a good, but not ridiculously expensive hotel right in the middle of Berlin?", "asker", t0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Type != extract.TypeRequest {
		t.Fatalf("request misclassified: %s", ex.Type)
	}
	ans, err := w.qa.Answer(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	// The formulated query mirrors the paper's.
	if !strings.Contains(ans.Query, "topk(3") ||
		!strings.Contains(ans.Query, `$x/City == "Berlin"`) ||
		!strings.Contains(ans.Query, `$x/User_Attitude == "Positive"`) ||
		!strings.Contains(ans.Query, "orderby score($x)") {
		t.Errorf("query = %q", ans.Query)
	}
	// The answer names the three hotels, like the paper's
	// "Some good hotels in Berlin are Axel Hotel, movenpick hotel, Berlin hotel."
	low := strings.ToLower(ans.Text)
	for _, hotel := range []string{"axel hotel", "movenpick hotel", "berlin hotel"} {
		if !strings.Contains(low, hotel) {
			t.Errorf("answer missing %q: %s", hotel, ans.Text)
		}
	}
	if !strings.Contains(low, "in berlin") {
		t.Errorf("answer missing location: %s", ans.Text)
	}
	if len(ans.Results) != 3 {
		t.Errorf("results = %d", len(ans.Results))
	}
}

func TestQANoData(t *testing.T) {
	w := newWorld(t)
	ex, err := w.ie.Extract(context.Background(), "any good hotels in Paris?", "asker", t0)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := w.qa.Answer(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.Text, "Sorry") {
		t.Errorf("empty-db answer = %q", ans.Text)
	}
}

func TestQACityFilter(t *testing.T) {
	w := newWorld(t)
	w.ingest(t, "loved the Axel Hotel in Berlin, great stay", "u1")
	w.ingest(t, "wonderful stay at hotel Lumiere in Paris", "u2")

	ex, err := w.ie.Extract(context.Background(), "recommend a good hotel in Paris please", "asker", t0)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := w.qa.Answer(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	low := strings.ToLower(ans.Text)
	if strings.Contains(low, "axel") {
		t.Errorf("Berlin hotel leaked into Paris answer: %s", ans.Text)
	}
	if !strings.Contains(low, "lumiere") {
		t.Errorf("Paris hotel missing: %s", ans.Text)
	}
}

func TestQATraffic(t *testing.T) {
	w := newWorld(t)
	w.ingest(t, "huge traffic jam in Nairobi after the accident, road blocked", "driver")
	ex, err := w.ie.Extract(context.Background(), "any traffic in Nairobi this morning?", "asker", t0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Type != extract.TypeRequest {
		t.Fatalf("traffic request misclassified: %v", ex.Type)
	}
	ans, err := w.qa.Answer(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(ans.Text), "nairobi") {
		t.Errorf("traffic answer = %q", ans.Text)
	}
	if !strings.Contains(ans.Text, "certainty") {
		t.Errorf("traffic answer lacks certainty: %q", ans.Text)
	}
}

func TestQAUnintelligible(t *testing.T) {
	w := newWorld(t)
	ex, err := w.ie.Extract(context.Background(), "what is the meaning of it all?", "philosopher", t0)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := w.qa.Answer(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.Text, "could not understand") {
		t.Errorf("answer = %q", ans.Text)
	}
	if _, err := w.qa.Answer(context.Background(), nil); err == nil {
		t.Error("nil extraction accepted")
	}
}

func TestNewServiceValidation(t *testing.T) {
	if _, err := NewService(nil, nil, nil, nil); err == nil {
		t.Error("nil deps accepted")
	}
}

func TestJoinNatural(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{nil, "none"},
		{[]string{"A"}, "A"},
		{[]string{"A", "B"}, "A and B"},
		{[]string{"A", "B", "C"}, "A, B and C"},
	}
	for _, c := range cases {
		if got := joinNatural(c.in); got != c.want {
			t.Errorf("joinNatural(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestNearPlaceSpatialQuery covers the paper's other example request —
// "What are the good/cheap hotels near Paris?" — which must formulate a
// spatial near() predicate rather than a City equality: a suburb hotel
// outside the city proper must still be found, a Berlin one must not.
func TestNearPlaceSpatialQuery(t *testing.T) {
	w := newWorld(t)
	// Versailles sits ~17 km from central Paris with a different City.
	if _, err := w.gaz.Add(gazetteer.Entry{
		Name: "Versailles", Location: geo.Point{Lat: 48.8049, Lon: 2.1204},
		Feature: gazetteer.FeatureCity, Country: "FR", Population: 85_000,
	}); err != nil {
		t.Fatal(err)
	}
	w.ont.LoadContainment(w.gaz)

	w.ingest(t, "lovely stay at the Lumiere Hotel in Paris, great staff", "u1")
	w.ingest(t, "the Orangerie Hotel in Versailles was wonderful and cheap", "u2")
	w.ingest(t, "great weekend at the Spree Hotel in Berlin", "u3")

	ex, err := w.ie.Extract(context.Background(), "What are the good cheap hotels near Paris?", "asker", t0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Type != extract.TypeRequest {
		t.Fatalf("request misclassified: %s", ex.Type)
	}
	ans, err := w.qa.Answer(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.Query, "near($x, 48.85") {
		t.Errorf("query lacks spatial predicate: %q", ans.Query)
	}
	low := strings.ToLower(ans.Text)
	if !strings.Contains(low, "lumiere hotel") {
		t.Errorf("answer missing the Paris hotel: %s", ans.Text)
	}
	if !strings.Contains(low, "orangerie hotel") {
		t.Errorf("answer missing the Versailles hotel (spatial radius should cover it): %s", ans.Text)
	}
	if strings.Contains(low, "spree hotel") {
		t.Errorf("answer leaked the Berlin hotel: %s", ans.Text)
	}
	if !strings.Contains(low, "near paris") {
		t.Errorf("answer should locate the results near Paris: %s", ans.Text)
	}
}

// TestNearUnknownPlaceFallsBack: if the relation object is not in the
// gazetteer the service must not formulate a spatial predicate.
func TestNearUnknownPlaceFallsBack(t *testing.T) {
	w := newWorld(t)
	w.ingest(t, "lovely stay at the Lumiere Hotel in Paris", "u1")
	ex, err := w.ie.Extract(context.Background(), "any good hotels near Atlantis?", "asker", t0)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := w.qa.Answer(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ans.Query, "near(") {
		t.Errorf("query should not contain spatial predicate for unknown place: %q", ans.Query)
	}
}
