// Package qa is the paper's Question Answering (QA) service: "receives the
// request keywords from the IE service, formulates the XML query, runs
// this query on the DB, retrieves the results, applies some inference on
// the results using geo-ontology if needed and sends the results back to
// the user in the form of natural language generated text".
package qa

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/extract"
	"repro/internal/gazetteer"
	"repro/internal/geo"
	"repro/internal/kb"
	"repro/internal/ner"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/xmldb"
)

// Ask-path breakdown inside the QA service: the store fan-out (Run
// crosses every shard in a partitioned deployment) versus ranking,
// filtering and natural-language generation.
var (
	mQAStageSeconds = obs.Default().Histogram("neogeo_qa_stage_seconds",
		"QA sub-stage wall time per answered request.", nil, "stage")
	qaStoreQuery = mQAStageSeconds.With("store_query")
	qaRank       = mQAStageSeconds.With("rank")
)

// Store is the query surface QA needs from the database. Both the
// single *xmldb.DB and the sharded *shard.Store satisfy it, so answers
// transparently fan out across shards in a partitioned deployment.
type Store interface {
	Run(query string) ([]xmldb.Result, error)
}

// ContextStore is the optional context-aware upgrade of Store (the
// fs.ReadDirFS pattern): a store that also implements RunContext gets
// the request context, so per-shard child spans land on the request's
// timeline. Answer type-asserts and prefers it.
type ContextStore interface {
	RunContext(ctx context.Context, query string) ([]xmldb.Result, error)
}

// Span names of the QA sub-stages (bounded constants).
const (
	spanStoreQuery = "store_query"
	spanRank       = "rank"
)

// Service is the QA module.
type Service struct {
	db  Store
	kb  *kb.KB
	gaz *gazetteer.Gazetteer
	ont *ontology.Ontology
	// K is the number of results returned (paper uses topk(3, …)).
	K int
	// MinCondP drops results whose where-clause probability falls below
	// this threshold: a hotel that is probably NOT good should not appear
	// in a "good hotels" answer even if topk has room for it.
	MinCondP float64
}

// NewService wires the QA service around a query store (a single
// database or a sharded one).
func NewService(db Store, k *kb.KB, g *gazetteer.Gazetteer, o *ontology.Ontology) (*Service, error) {
	if db == nil || k == nil || g == nil || o == nil {
		return nil, fmt.Errorf("qa: nil dependency")
	}
	return &Service{db: db, kb: k, gaz: g, ont: o, K: 3, MinCondP: 0.5}, nil
}

// Answer is the QA output for one request.
type Answer struct {
	// Text is the generated natural-language reply.
	Text string
	// Query is the formulated XML query, for transparency/debugging (the
	// paper shows it explicitly in the worked scenario).
	Query string
	// Results are the underlying ranked records.
	Results []xmldb.Result
}

// request captures what the QA service understood from the keywords.
type request struct {
	domain    kb.Domain
	city      string
	cityFound bool
	positive  bool   // asked for good/nice/recommended
	cheap     bool   // asked for cheap / not expensive
	place     string // traffic/farming place keyword
	// nearPlace/nearPoint/nearRadius ground a proximity request ("What
	// are the good/cheap hotels near Paris?", paper §Alternative
	// Validation Scenario) as a spatial predicate instead of a City
	// equality — hotels near Paris need not be in Paris.
	nearPlace  string
	nearPoint  *geo.Point
	nearRadius float64
}

// Answer answers a request-message extraction. The store query and the
// rank/generate half each get a span on the request timeline; a store
// implementing ContextStore additionally records one child span per
// shard it fans out to.
func (s *Service) Answer(ctx context.Context, ex *extract.Extraction) (Answer, error) {
	if ex == nil {
		return Answer{}, fmt.Errorf("qa: nil extraction")
	}
	req, ok := s.analyze(ex)
	if !ok {
		return Answer{
			Text: "Sorry, I could not understand what you are looking for.",
		}, nil
	}
	query := s.formulate(req)
	runCtx, runSpan := obs.StartSpan(ctx, spanStoreQuery)
	runStart := time.Now()
	var results []xmldb.Result
	var err error
	if cs, ok := s.db.(ContextStore); ok {
		results, err = cs.RunContext(runCtx, query)
	} else {
		results, err = s.db.Run(query)
	}
	qaStoreQuery.Since(runStart)
	runSpan.SetInt("candidates", len(results))
	runSpan.SetError(err)
	runSpan.End()
	if err != nil {
		return Answer{}, fmt.Errorf("qa: executing %q: %w", query, err)
	}
	_, rankSpan := obs.StartSpan(ctx, spanRank)
	rankStart := time.Now()
	kept := results[:0]
	for _, r := range results {
		if r.CondP >= s.MinCondP {
			kept = append(kept, r)
		}
	}
	results = kept
	ans := Answer{
		Text:    s.generate(req, results),
		Query:   query,
		Results: results,
	}
	qaRank.Since(rankStart)
	rankSpan.SetInt("results", len(results))
	rankSpan.End()
	return ans, nil
}

// analyze maps keywords and entities onto a domain, a location and
// qualifiers.
func (s *Service) analyze(ex *extract.Extraction) (request, bool) {
	var req request
	domainName := ex.Domain
	if domainName == "" {
		// Fall back to concept scan over keywords.
		for _, w := range ex.Keywords {
			if c, ok := s.ont.ConceptOf(w); ok {
				switch {
				case s.ont.IsA(c, "lodging") || s.ont.IsA(c, "food"):
					domainName = "tourism"
				case s.ont.IsA(c, "transport"):
					domainName = "traffic"
				case s.ont.IsA(c, "agriculture"):
					domainName = "farming"
				}
			}
			if domainName != "" {
				break
			}
		}
	}
	d, ok := s.kb.Domain(domainName)
	if !ok {
		return req, false
	}
	req.domain = d

	// Location: prefer a recognised location entity; else a gazetteer hit
	// among keywords.
	for _, e := range ex.Entities {
		if e.Type == ner.TypeLocation {
			req.city = e.Text
			req.cityFound = true
			break
		}
	}
	if !req.cityFound {
		for _, w := range ex.Keywords {
			if s.gaz.HasName(w) {
				req.city = w
				req.cityFound = true
				break
			}
		}
	}
	// A resolved location entity is the most reliable place reference;
	// relation objects ("near the station") fill in when no toponym was
	// recognised.
	if req.cityFound {
		req.place = req.city
	} else {
		for _, r := range ex.Relations {
			if r.Object != "" {
				req.place = r.Object
				break
			}
		}
	}

	// Proximity request ("hotels near Paris", "within 5 km of Nairobi"):
	// ground the relation's object against the gazetteer and query the
	// spatial index rather than demanding City equality.
	for _, r := range ex.Relations {
		if r.Object == "" || (r.Kind != ner.RelProximity && r.Kind != ner.RelDistance) {
			continue
		}
		p, ok := s.resolvePlace(r.Object)
		if !ok {
			continue
		}
		req.nearPlace = r.Object
		req.nearPoint = &p
		req.nearRadius = r.DistanceMeters
		if req.nearRadius == 0 {
			req.nearRadius = defaultNearMeters
		}
		break
	}

	for _, w := range ex.Keywords {
		switch w {
		case "good", "nice", "best", "great", "recommend", "recommended", "lovely":
			req.positive = true
		case "cheap", "affordable", "budget", "inexpensive":
			req.cheap = true
		case "expensive":
			// "not ridiculously expensive" normalises with "not" as a
			// separate keyword; treat any expensive-mention as a price
			// concern.
			req.cheap = true
		}
	}
	return req, true
}

// defaultNearMeters is the radius implied by an unquantified "near X" in a
// request about lodging/venues.
const defaultNearMeters = 20_000

// resolvePlace grounds a request-time place reference to a point, taking
// the most prominent (highest-population) gazetteer reference — request
// messages carry too little context for full disambiguation, and for a
// question the population prior is the user's most likely intent.
func (s *Service) resolvePlace(name string) (geo.Point, bool) {
	entries := s.gaz.Lookup(name)
	if len(entries) == 0 {
		return geo.Point{}, false
	}
	best := entries[0]
	for _, e := range entries[1:] {
		if e.Population > best.Population {
			best = e
		}
	}
	return best.Location, true
}

// formulate builds the query string — for the tourism scenario, exactly
// the paper's topk query.
func (s *Service) formulate(req request) string {
	var conds []string
	switch req.domain.Name {
	case "tourism":
		switch {
		case req.nearPoint != nil:
			conds = append(conds, fmt.Sprintf("near($x, %.4f, %.4f, %.0f)",
				req.nearPoint.Lat, req.nearPoint.Lon, req.nearRadius))
		case req.cityFound:
			conds = append(conds, fmt.Sprintf(`$x/City == "%s"`, titleWord(req.city)))
		}
		if req.positive {
			conds = append(conds, `$x/User_Attitude == "Positive"`)
		}
	case "traffic":
		if req.place != "" {
			conds = append(conds, fmt.Sprintf(`$x/Place == "%s"`, titleWord(req.place)))
		}
	case "farming":
		if req.place != "" {
			conds = append(conds, fmt.Sprintf(`$x/Region == "%s"`, titleWord(req.place)))
		}
	}
	where := ""
	if len(conds) > 0 {
		where = " where " + strings.Join(conds, " and ")
	}
	return fmt.Sprintf("topk(%d, for $x in //%s%s orderby score($x) return $x)",
		s.K, req.domain.Collection, where)
}

// generate renders the natural-language answer.
func (s *Service) generate(req request, results []xmldb.Result) string {
	if len(results) == 0 {
		where := ""
		switch {
		case req.nearPlace != "":
			where = " near " + titleWord(req.nearPlace)
		case req.cityFound:
			where = " in " + titleWord(req.city)
		case req.place != "":
			where = " near " + req.place
		}
		return fmt.Sprintf("Sorry, I have no information about %s%s yet.",
			strings.TrimSuffix(req.domain.Collection, "s"), where)
	}
	switch req.domain.Name {
	case "tourism":
		names := make([]string, 0, len(results))
		for _, r := range results {
			if n, _ := r.Record.Doc.FirstChild("Hotel_Name"); n != nil {
				names = append(names, n.TextContent())
			}
		}
		qualifier := "good "
		if !req.positive {
			qualifier = ""
		}
		if req.cheap {
			qualifier += "affordable "
		}
		where := ""
		switch {
		case req.nearPlace != "":
			where = " near " + titleWord(req.nearPlace)
		case req.cityFound:
			where = " in " + titleWord(req.city)
		}
		return fmt.Sprintf("Some %shotels%s are %s.", qualifier, where, joinNatural(names))
	case "traffic":
		var parts []string
		for _, r := range results {
			place := fieldText(r, "Place")
			cond := topAlt(r, "Condition")
			parts = append(parts, fmt.Sprintf("%s: %s reported (certainty %.2f)", place, cond, r.Score))
		}
		return "Latest road reports — " + strings.Join(parts, "; ") + "."
	case "farming":
		var parts []string
		for _, r := range results {
			region := fieldText(r, "Region")
			topic := topAlt(r, "Topic")
			parts = append(parts, fmt.Sprintf("%s: %s (certainty %.2f)", region, topic, r.Score))
		}
		return "Latest field reports — " + strings.Join(parts, "; ") + "."
	default:
		return fmt.Sprintf("Found %d matching records.", len(results))
	}
}

func fieldText(r xmldb.Result, field string) string {
	if n, _ := r.Record.Doc.FirstChild(field); n != nil {
		return n.TextContent()
	}
	return "unknown"
}

func topAlt(r xmldb.Result, field string) string {
	n, _ := r.Record.Doc.FirstChild(field)
	if n == nil {
		return "unknown"
	}
	dist := extract.MuxToDist(n)
	if top, ok := dist.Top(); ok {
		// Concept identifiers read as prose ("flooded_road" -> "flooded road").
		return strings.ReplaceAll(top.Name, "_", " ")
	}
	return "unknown"
}

// joinNatural renders "A, B, C" as "A, B and C".
func joinNatural(names []string) string {
	switch len(names) {
	case 0:
		return "none"
	case 1:
		return names[0]
	default:
		return strings.Join(names[:len(names)-1], ", ") + " and " + names[len(names)-1]
	}
}

// titleWord uppercases the first letter of each word for display and for
// matching stored City values ("berlin" -> "Berlin").
func titleWord(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		if len(w) > 0 {
			words[i] = strings.ToUpper(w[:1]) + w[1:]
		}
	}
	return strings.Join(words, " ")
}
