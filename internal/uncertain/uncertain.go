// Package uncertain is the probabilistic framework shared by the
// information-extraction and data-integration services (paper RQ2: "What
// probabilistic framework can manage uncertainty in the IE/DI process?").
// It provides certainty factors with MYCIN-style combination, Bayesian
// evidence fusion, discrete probability distributions over alternatives,
// and a source-trust model, answering RQ2b/RQ2c's call to "measure
// different sources of uncertainty" and "combine those measures".
package uncertain

import (
	"fmt"
	"math"
	"sort"
)

// CF is a certainty factor in [-1, 1]: 1 is certain belief, -1 certain
// disbelief, 0 no information.
type CF float64

// Validate reports whether the CF is in range.
func (c CF) Validate() error {
	if math.IsNaN(float64(c)) || c < -1 || c > 1 {
		return fmt.Errorf("uncertain: certainty factor %v out of [-1, 1]", float64(c))
	}
	return nil
}

// clampCF forces a value into [-1, 1], absorbing floating-point drift.
func clampCF(v float64) CF {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return CF(v)
}

// Combine merges two certainty factors about the same proposition using the
// MYCIN parallel-combination rule, which is commutative and associative:
//
//	both >= 0:  a + b - a*b
//	both <= 0:  a + b + a*b
//	mixed:      (a + b) / (1 - min(|a|, |b|))
func Combine(a, b CF) CF {
	x, y := float64(a), float64(b)
	switch {
	case x >= 0 && y >= 0:
		return clampCF(x + y - x*y)
	case x <= 0 && y <= 0:
		return clampCF(x + y + x*y)
	default:
		den := 1 - math.Min(math.Abs(x), math.Abs(y))
		if den == 0 {
			// Total contradiction (+1 combined with -1): no information.
			return 0
		}
		return clampCF((x + y) / den)
	}
}

// CombineAll folds Combine over a slice; an empty slice yields 0.
func CombineAll(cfs []CF) CF {
	var acc CF
	for _, c := range cfs {
		acc = Combine(acc, c)
	}
	return acc
}

// Attenuate scales a certainty factor by the reliability of the rule or
// source that produced it (MYCIN's CF(rule)*CF(evidence) chaining).
// reliability is clamped to [0, 1].
func Attenuate(c CF, reliability float64) CF {
	if reliability < 0 {
		reliability = 0
	}
	if reliability > 1 {
		reliability = 1
	}
	return clampCF(float64(c) * reliability)
}

// FromProbability maps a probability in [0, 1] to a certainty factor in
// [-1, 1] linearly around the 0.5 indifference point.
func FromProbability(p float64) CF {
	return clampCF(2*p - 1)
}

// ToProbability maps a certainty factor back to a probability.
func ToProbability(c CF) float64 {
	return (float64(c) + 1) / 2
}

// BayesUpdate returns the posterior probability of a hypothesis with prior
// p after observing evidence with the given likelihood ratio
// P(E|H)/P(E|¬H). Ratios above 1 raise the posterior.
func BayesUpdate(prior, likelihoodRatio float64) float64 {
	if prior <= 0 {
		return 0
	}
	if prior >= 1 {
		return 1
	}
	if likelihoodRatio < 0 {
		likelihoodRatio = 0
	}
	odds := prior / (1 - prior) * likelihoodRatio
	return odds / (1 + odds)
}

// Dist is a discrete probability distribution over named alternatives, the
// representation behind template fields such as
// "Country: P(Germany) > P(USA) > …" in the paper's worked scenario.
type Dist struct {
	alts  map[string]float64
	order []string // insertion order for deterministic iteration
}

// NewDist returns an empty distribution.
func NewDist() *Dist {
	return &Dist{alts: make(map[string]float64)}
}

// Set assigns unnormalised mass to an alternative. Negative mass is
// rejected.
func (d *Dist) Set(name string, mass float64) error {
	if math.IsNaN(mass) || mass < 0 {
		return fmt.Errorf("uncertain: invalid mass %v for %q", mass, name)
	}
	if _, ok := d.alts[name]; !ok {
		d.order = append(d.order, name)
	}
	d.alts[name] = mass
	return nil
}

// Add accumulates mass onto an alternative.
func (d *Dist) Add(name string, mass float64) error {
	if math.IsNaN(mass) || mass < 0 {
		return fmt.Errorf("uncertain: invalid mass %v for %q", mass, name)
	}
	if _, ok := d.alts[name]; !ok {
		d.order = append(d.order, name)
	}
	d.alts[name] += mass
	return nil
}

// Len returns the number of alternatives.
func (d *Dist) Len() int { return len(d.alts) }

// P returns the normalised probability of the alternative (0 if absent or
// if the distribution has no mass).
func (d *Dist) P(name string) float64 {
	total := d.total()
	if total == 0 {
		return 0
	}
	return d.alts[name] / total
}

func (d *Dist) total() float64 {
	var t float64
	for _, m := range d.alts {
		t += m
	}
	return t
}

// Mass returns the unnormalised mass of an alternative (0 if absent).
// When masses were accumulated as absolute probabilities (as pxml's value
// distributions do), Mass is the marginal probability itself.
func (d *Dist) Mass(name string) float64 {
	return d.alts[name]
}

// TotalMass returns the sum of unnormalised masses.
func (d *Dist) TotalMass() float64 {
	return d.total()
}

// Masses returns all (name, unnormalised mass) pairs in insertion order.
func (d *Dist) Masses() []Alternative {
	out := make([]Alternative, 0, len(d.order))
	for _, name := range d.order {
		out = append(out, Alternative{Name: name, P: d.alts[name]})
	}
	return out
}

// Alternative is one (name, probability) pair of a normalised distribution.
type Alternative struct {
	Name string
	P    float64
}

// Normalized returns the alternatives sorted by decreasing probability
// (ties broken by name for determinism). Probabilities sum to 1 unless the
// distribution is empty or massless.
func (d *Dist) Normalized() []Alternative {
	total := d.total()
	out := make([]Alternative, 0, len(d.order))
	for _, name := range d.order {
		p := 0.0
		if total > 0 {
			p = d.alts[name] / total
		}
		out = append(out, Alternative{Name: name, P: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Top returns the most probable alternative, or ok=false when empty.
func (d *Dist) Top() (Alternative, bool) {
	alts := d.Normalized()
	if len(alts) == 0 {
		return Alternative{}, false
	}
	return alts[0], true
}

// Entropy returns the Shannon entropy (bits) of the normalised
// distribution — the disambiguation service's measure of residual
// ambiguity.
func (d *Dist) Entropy() float64 {
	var h float64
	for _, a := range d.Normalized() {
		if a.P > 0 {
			h -= a.P * math.Log2(a.P)
		}
	}
	return h
}

// Merge combines another distribution into d with the given weight,
// implementing weighted evidence pooling across observations.
func (d *Dist) Merge(o *Dist, weight float64) error {
	if weight < 0 {
		return fmt.Errorf("uncertain: negative merge weight %v", weight)
	}
	for _, a := range o.Normalized() {
		if err := d.Add(a.Name, a.P*weight); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns an independent copy.
func (d *Dist) Clone() *Dist {
	c := NewDist()
	for _, name := range d.order {
		c.order = append(c.order, name)
		c.alts[name] = d.alts[name]
	}
	return c
}
