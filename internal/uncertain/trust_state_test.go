package uncertain

import (
	"math"
	"testing"
)

// TestTrustStateRoundTrip: learned reliabilities survive export/import
// exactly — the counts behind every source, not just the point
// estimate.
func TestTrustStateRoundTrip(t *testing.T) {
	src, err := NewTrustModel(0.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		src.Confirm("alice")
	}
	src.Contradict("bob")
	src.Confirm("bob")

	dst, err := NewTrustModel(0.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportState(src.ExportState()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alice", "bob", "unseen"} {
		if got, want := dst.Reliability(name), src.Reliability(name); math.Abs(got-want) > 1e-15 {
			t.Errorf("Reliability(%s) after round trip = %v, want %v", name, got, want)
		}
	}
	// Counts restored, not just ratios: further feedback continues from
	// the imported evidence.
	src.Contradict("alice")
	dst.Contradict("alice")
	if got, want := dst.Reliability("alice"), src.Reliability("alice"); math.Abs(got-want) > 1e-15 {
		t.Errorf("post-import update diverges: %v vs %v", got, want)
	}
}

// TestTrustStateValidation: malformed states are refused before any
// mutation.
func TestTrustStateValidation(t *testing.T) {
	m, err := NewTrustModel(0.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	m.Confirm("alice")
	before := m.Reliability("alice")

	bad := []TrustState{
		{Prior: 1.5},
		{Weight: -1},
		{Sources: map[string]SourceCounts{"x": {Confirmed: -1}}},
	}
	for i, st := range bad {
		if err := m.ImportState(st); err == nil {
			t.Errorf("bad state #%d accepted", i)
		}
	}
	if got := m.Reliability("alice"); got != before {
		t.Errorf("failed import mutated the model: %v != %v", got, before)
	}

	// An empty state resets learned counts but keeps the configured prior.
	if err := m.ImportState(TrustState{}); err != nil {
		t.Fatal(err)
	}
	if got := m.Reliability("alice"); got != 0.6 {
		t.Errorf("reset state reliability = %v, want prior 0.6", got)
	}
}
