package uncertain

import (
	"sync"
	"testing"
)

func TestTrustModelPrior(t *testing.T) {
	m, err := NewTrustModel(0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Reliability("unknown"); got != 0.6 {
		t.Errorf("unknown reliability = %v, want prior 0.6", got)
	}
}

func TestTrustModelInvalid(t *testing.T) {
	for _, c := range []struct{ p, w float64 }{{0, 1}, {1, 1}, {-0.1, 1}, {0.5, 0}, {0.5, -2}} {
		if _, err := NewTrustModel(c.p, c.w); err == nil {
			t.Errorf("NewTrustModel(%v, %v) accepted", c.p, c.w)
		}
	}
}

func TestTrustUpdates(t *testing.T) {
	m, err := NewTrustModel(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := m.Reliability("alice")
	m.Confirm("alice")
	up := m.Reliability("alice")
	if up <= base {
		t.Errorf("confirmation did not raise reliability: %v -> %v", base, up)
	}
	m.Contradict("bob")
	down := m.Reliability("bob")
	if down >= base {
		t.Errorf("contradiction did not lower reliability: %v -> %v", base, down)
	}
	// Many confirmations approach but never reach 1.
	for i := 0; i < 1000; i++ {
		m.Confirm("alice")
	}
	r := m.Reliability("alice")
	if r <= 0.9 || r >= 1 {
		t.Errorf("heavily-confirmed reliability = %v, want in (0.9, 1)", r)
	}
	// Many contradictions approach but never reach 0.
	for i := 0; i < 1000; i++ {
		m.Contradict("bob")
	}
	r = m.Reliability("bob")
	if r <= 0 || r >= 0.1 {
		t.Errorf("heavily-contradicted reliability = %v, want in (0, 0.1)", r)
	}
}

func TestTrustReport(t *testing.T) {
	m, err := NewTrustModel(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Confirm("good")
	m.Contradict("bad")
	m.Confirm("good")
	rep := m.Report()
	if len(rep) != 2 {
		t.Fatalf("report has %d entries", len(rep))
	}
	if rep[0].Source != "good" || rep[1].Source != "bad" {
		t.Errorf("report order: %+v", rep)
	}
	if rep[0].Confirmed != 2 {
		t.Errorf("confirmed count = %v", rep[0].Confirmed)
	}
}

func TestTrustConcurrent(t *testing.T) {
	m, err := NewTrustModel(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if j%2 == 0 {
					m.Confirm("s")
				} else {
					m.Contradict("s")
				}
				_ = m.Reliability("s")
			}
		}(i)
	}
	wg.Wait()
	r := m.Reliability("s")
	// Equal confirmations and contradictions keep reliability near prior.
	if r < 0.4 || r > 0.6 {
		t.Errorf("balanced reliability = %v, want about 0.5", r)
	}
}
