package uncertain

import (
	"math"
	"testing"
	"testing/quick"
)

func clamp01(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	x = math.Abs(math.Mod(x, 1))
	return x
}

func randomCF(x float64) CF {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return clampCF(math.Mod(x, 1))
}

func TestCombineKnown(t *testing.T) {
	cases := []struct {
		a, b, want CF
	}{
		{0, 0, 0},
		{0.5, 0, 0.5},
		{0.5, 0.5, 0.75},
		{1, 0.5, 1},
		{-0.5, -0.5, -0.75},
		{1, -1, 0},
	}
	for _, c := range cases {
		if got := Combine(c.a, c.b); math.Abs(float64(got-c.want)) > 1e-12 {
			t.Errorf("Combine(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// Mixed-sign case: (0.8 - 0.3) / (1 - 0.3).
	got := Combine(0.8, -0.3)
	want := CF(0.5 / 0.7)
	if math.Abs(float64(got-want)) > 1e-12 {
		t.Errorf("mixed Combine = %v, want %v", got, want)
	}
}

func TestCombineCommutative(t *testing.T) {
	f := func(x, y float64) bool {
		a, b := randomCF(x), randomCF(y)
		return math.Abs(float64(Combine(a, b)-Combine(b, a))) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCombineAssociativeSameSign(t *testing.T) {
	// MYCIN combination is associative for same-sign evidence.
	f := func(x, y, z float64) bool {
		a := clampCF(math.Abs(math.Mod(x, 1)))
		b := clampCF(math.Abs(math.Mod(y, 1)))
		c := clampCF(math.Abs(math.Mod(z, 1)))
		l := Combine(Combine(a, b), c)
		r := Combine(a, Combine(b, c))
		return math.Abs(float64(l-r)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCombineBounded(t *testing.T) {
	f := func(x, y float64) bool {
		got := Combine(randomCF(x), randomCF(y))
		return got.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCombineMonotone(t *testing.T) {
	// Adding positive evidence never lowers belief.
	f := func(x, y float64) bool {
		a := randomCF(x)
		b := clampCF(math.Abs(math.Mod(y, 1)))
		return Combine(a, b) >= a-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCombineAll(t *testing.T) {
	if got := CombineAll(nil); got != 0 {
		t.Errorf("CombineAll(nil) = %v", got)
	}
	got := CombineAll([]CF{0.5, 0.5, 0.5})
	want := Combine(Combine(0.5, 0.5), 0.5)
	if got != want {
		t.Errorf("CombineAll = %v, want %v", got, want)
	}
}

func TestAttenuate(t *testing.T) {
	if got := Attenuate(0.8, 0.5); got != 0.4 {
		t.Errorf("Attenuate = %v", got)
	}
	if got := Attenuate(0.8, 2); got != 0.8 {
		t.Errorf("reliability clamp high: %v", got)
	}
	if got := Attenuate(0.8, -1); got != 0 {
		t.Errorf("reliability clamp low: %v", got)
	}
	if got := Attenuate(-0.6, 0.5); got != -0.3 {
		t.Errorf("negative CF attenuation: %v", got)
	}
}

func TestProbabilityRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		p := clamp01(x)
		back := ToProbability(FromProbability(p))
		return math.Abs(back-p) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if FromProbability(0.5) != 0 {
		t.Error("indifference point not 0")
	}
	if FromProbability(1) != 1 || FromProbability(0) != -1 {
		t.Error("endpoints wrong")
	}
}

func TestBayesUpdate(t *testing.T) {
	// Supporting evidence raises, opposing lowers, neutral keeps.
	if got := BayesUpdate(0.5, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("neutral update = %v", got)
	}
	if got := BayesUpdate(0.5, 3); got <= 0.5 {
		t.Errorf("supporting update = %v", got)
	}
	if got := BayesUpdate(0.5, 0.2); got >= 0.5 {
		t.Errorf("opposing update = %v", got)
	}
	if got := BayesUpdate(0, 10); got != 0 {
		t.Errorf("zero prior = %v", got)
	}
	if got := BayesUpdate(1, 0.1); got != 1 {
		t.Errorf("unit prior = %v", got)
	}
	// Known value: prior 0.5, LR 3 -> 0.75.
	if got := BayesUpdate(0.5, 3); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("LR3 update = %v, want 0.75", got)
	}
}

func TestBayesUpdateBounded(t *testing.T) {
	f := func(x, y float64) bool {
		p := clamp01(x)
		lr := math.Abs(math.Mod(y, 100))
		got := BayesUpdate(p, lr)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistBasics(t *testing.T) {
	d := NewDist()
	if _, ok := d.Top(); ok {
		t.Error("empty dist has a top")
	}
	if err := d.Set("Germany", 3); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("USA", 1); err != nil {
		t.Fatal(err)
	}
	if got := d.P("Germany"); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("P(Germany) = %v, want 0.75", got)
	}
	top, ok := d.Top()
	if !ok || top.Name != "Germany" {
		t.Errorf("Top = %+v", top)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if err := d.Set("x", -1); err == nil {
		t.Error("negative mass accepted")
	}
	if err := d.Add("x", math.NaN()); err == nil {
		t.Error("NaN mass accepted")
	}
}

func TestDistNormalizedSumsToOne(t *testing.T) {
	f := func(a, b, c float64) bool {
		d := NewDist()
		_ = d.Set("a", math.Abs(math.Mod(a, 10))+0.1)
		_ = d.Set("b", math.Abs(math.Mod(b, 10)))
		_ = d.Set("c", math.Abs(math.Mod(c, 10)))
		var sum float64
		for _, alt := range d.Normalized() {
			if alt.P < 0 || alt.P > 1 {
				return false
			}
			sum += alt.P
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistOrderingDeterministic(t *testing.T) {
	d := NewDist()
	_ = d.Set("b", 1)
	_ = d.Set("a", 1)
	_ = d.Set("c", 2)
	alts := d.Normalized()
	if alts[0].Name != "c" || alts[1].Name != "a" || alts[2].Name != "b" {
		t.Errorf("ordering = %v", alts)
	}
}

func TestDistEntropy(t *testing.T) {
	d := NewDist()
	_ = d.Set("only", 1)
	if h := d.Entropy(); h != 0 {
		t.Errorf("single-alternative entropy = %v", h)
	}
	u := NewDist()
	_ = u.Set("a", 1)
	_ = u.Set("b", 1)
	if h := u.Entropy(); math.Abs(h-1) > 1e-12 {
		t.Errorf("uniform-2 entropy = %v, want 1", h)
	}
	// More alternatives, more entropy.
	v := NewDist()
	for _, n := range []string{"a", "b", "c", "d"} {
		_ = v.Set(n, 1)
	}
	if v.Entropy() <= u.Entropy() {
		t.Error("entropy did not grow with alternatives")
	}
}

func TestDistMerge(t *testing.T) {
	d := NewDist()
	_ = d.Set("Germany", 0.6)
	_ = d.Set("USA", 0.4)
	o := NewDist()
	_ = o.Set("Germany", 1)
	if err := d.Merge(o, 1); err != nil {
		t.Fatal(err)
	}
	if d.P("Germany") <= 0.6 {
		t.Errorf("merge did not strengthen Germany: %v", d.P("Germany"))
	}
	if err := d.Merge(o, -1); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestDistClone(t *testing.T) {
	d := NewDist()
	_ = d.Set("a", 1)
	c := d.Clone()
	_ = c.Set("b", 5)
	if d.Len() != 1 {
		t.Error("clone mutated original")
	}
	if c.Len() != 2 {
		t.Error("clone incomplete")
	}
}

func TestCFValidate(t *testing.T) {
	if err := CF(0.5).Validate(); err != nil {
		t.Error(err)
	}
	for _, bad := range []CF{1.5, -1.5, CF(math.NaN())} {
		if err := bad.Validate(); err == nil {
			t.Errorf("CF %v passed validation", float64(bad))
		}
	}
}
