package uncertain

import (
	"fmt"
	"sort"
	"sync"
)

// TrustModel tracks per-source reliability — the paper's "uncertainty in
// the source of information … the possibility that the data provided is
// completely or partially incorrect", and "how trustful are the users who
// sent those messages". Reliability starts at a configurable prior and is
// updated by confirmation/contradiction feedback from the data-integration
// service using a Beta-like running estimate.
type TrustModel struct {
	mu      sync.RWMutex
	prior   float64
	weight  float64 // pseudo-count weight of the prior
	sources map[string]*sourceStats
}

type sourceStats struct {
	confirmed    float64
	contradicted float64
}

// NewTrustModel returns a model whose unseen sources have the given prior
// reliability in (0, 1), backed by priorWeight pseudo-observations.
func NewTrustModel(prior, priorWeight float64) (*TrustModel, error) {
	if prior <= 0 || prior >= 1 {
		return nil, fmt.Errorf("uncertain: trust prior %v outside (0, 1)", prior)
	}
	if priorWeight <= 0 {
		return nil, fmt.Errorf("uncertain: trust prior weight %v must be positive", priorWeight)
	}
	return &TrustModel{
		prior:   prior,
		weight:  priorWeight,
		sources: make(map[string]*sourceStats),
	}, nil
}

// Reliability returns the current reliability estimate for a source in
// (0, 1). Unknown sources return the prior.
func (t *TrustModel) Reliability(source string) float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s, ok := t.sources[source]
	if !ok {
		return t.prior
	}
	return (t.prior*t.weight + s.confirmed) / (t.weight + s.confirmed + s.contradicted)
}

// Confirm records that a source's contribution was corroborated.
func (t *TrustModel) Confirm(source string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats(source).confirmed++
}

// Contradict records that a source's contribution conflicted with better
// evidence.
func (t *TrustModel) Contradict(source string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats(source).contradicted++
}

func (t *TrustModel) stats(source string) *sourceStats {
	s, ok := t.sources[source]
	if !ok {
		s = &sourceStats{}
		t.sources[source] = s
	}
	return s
}

// SourceReport is a snapshot of one source's track record.
type SourceReport struct {
	Source       string
	Reliability  float64
	Confirmed    float64
	Contradicted float64
}

// TrustState is the serializable image of a TrustModel: the prior and
// every tracked source's raw counts. It exists so learned source
// reliability can ride inside store checkpoints and snapshots instead
// of silently resetting to the prior on every restart.
type TrustState struct {
	Prior   float64                 `json:"prior"`
	Weight  float64                 `json:"weight"`
	Sources map[string]SourceCounts `json:"sources,omitempty"`
}

// SourceCounts is one source's raw confirmation/contradiction tally.
type SourceCounts struct {
	Confirmed    float64 `json:"confirmed"`
	Contradicted float64 `json:"contradicted"`
}

// ExportState snapshots the model for serialization.
func (t *TrustModel) ExportState() TrustState {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := TrustState{Prior: t.prior, Weight: t.weight}
	if len(t.sources) > 0 {
		st.Sources = make(map[string]SourceCounts, len(t.sources))
		for name, s := range t.sources {
			st.Sources[name] = SourceCounts{Confirmed: s.confirmed, Contradicted: s.contradicted}
		}
	}
	return st
}

// ImportState replaces the model's learned counts with a previously
// exported image. A zero-valued state (no prior) keeps the model's own
// prior and only restores the per-source counts, so images written by a
// differently configured model still restore the learned evidence.
func (t *TrustModel) ImportState(st TrustState) error {
	if st.Prior != 0 && (st.Prior <= 0 || st.Prior >= 1) {
		return fmt.Errorf("uncertain: trust state prior %v outside (0, 1)", st.Prior)
	}
	if st.Weight < 0 {
		return fmt.Errorf("uncertain: trust state weight %v negative", st.Weight)
	}
	for name, c := range st.Sources {
		if c.Confirmed < 0 || c.Contradicted < 0 {
			return fmt.Errorf("uncertain: trust state source %q has negative counts", name)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if st.Prior != 0 {
		t.prior = st.Prior
	}
	if st.Weight > 0 {
		t.weight = st.Weight
	}
	t.sources = make(map[string]*sourceStats, len(st.Sources))
	for name, c := range st.Sources {
		t.sources[name] = &sourceStats{confirmed: c.Confirmed, contradicted: c.Contradicted}
	}
	return nil
}

// Report returns all tracked sources sorted by decreasing reliability.
func (t *TrustModel) Report() []SourceReport {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]SourceReport, 0, len(t.sources))
	for name, s := range t.sources {
		out = append(out, SourceReport{
			Source:       name,
			Reliability:  (t.prior*t.weight + s.confirmed) / (t.weight + s.confirmed + s.contradicted),
			Confirmed:    s.confirmed,
			Contradicted: s.contradicted,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Reliability != out[j].Reliability {
			return out[i].Reliability > out[j].Reliability
		}
		return out[i].Source < out[j].Source
	})
	return out
}
