package disambig

import (
	"fmt"
	"sync"

	"repro/internal/text"
)

// Priors is the reinforcement memory of the disambiguation service: a
// per-name distribution of confirmed gazetteer interpretations, learned
// from user feedback on query answers. The paper frames human feedback
// as the mechanism that drives uncertainty down over time — repeated
// confirmations that "Paris" meant one particular reference must change
// how *future* mentions of "Paris" resolve, not just the one record the
// verdict was about. The feedback engine calls Reinforce; the Resolver
// multiplies Boost into every candidate's score.
//
// All methods are safe for concurrent use.
type Priors struct {
	mu    sync.RWMutex
	names map[string]*namePrior
}

type namePrior struct {
	mass  map[int64]float64 // gazetteer entry ID -> accumulated confirmations
	total float64
}

// reinforceGain scales how strongly a fully confirmed interpretation is
// boosted; reinforceSat is the pseudo-count damping a handful of early
// confirmations (boost saturates toward 1+gain as evidence accumulates).
const (
	reinforceGain = 4.0
	reinforceSat  = 2.0
)

// NewPriors returns an empty reinforcement memory.
func NewPriors() *Priors {
	return &Priors{names: make(map[string]*namePrior)}
}

// Reinforce adds confirmation mass for one (name, gazetteer entry)
// interpretation. Negative or NaN mass is ignored.
func (p *Priors) Reinforce(name string, entryID int64, mass float64) {
	norm := text.NormalizeName(name)
	if norm == "" || entryID <= 0 || !(mass > 0) {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	np, ok := p.names[norm]
	if !ok {
		np = &namePrior{mass: make(map[int64]float64)}
		p.names[norm] = np
	}
	np.mass[entryID] += mass
	np.total += mass
}

// Boost returns the learned multiplier for a candidate interpretation:
// 1 for names or entries never confirmed, rising toward 1+reinforceGain
// as confirmations of this entry dominate the name's feedback history.
func (p *Priors) Boost(name string, entryID int64) float64 {
	norm := text.NormalizeName(name)
	if norm == "" {
		return 1
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	np, ok := p.names[norm]
	if !ok || np.total == 0 {
		return 1
	}
	m := np.mass[entryID]
	if m == 0 {
		return 1
	}
	// share*saturation = m/total * total/(total+k) = m/(total+k).
	return 1 + reinforceGain*m/(np.total+reinforceSat)
}

// Names returns how many distinct names carry learned priors.
func (p *Priors) Names() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.names)
}

// PriorsState is the serializable image of the learned priors, carried
// in store checkpoints so reinforcement survives restarts. Entry IDs are
// gazetteer IDs, which are deterministic for a fixed gazetteer seed.
type PriorsState map[string]map[int64]float64

// ExportState snapshots the priors for serialization.
func (p *Priors) ExportState() PriorsState {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.names) == 0 {
		return nil
	}
	out := make(PriorsState, len(p.names))
	for name, np := range p.names {
		m := make(map[int64]float64, len(np.mass))
		for id, v := range np.mass {
			m[id] = v
		}
		out[name] = m
	}
	return out
}

// ImportState replaces the learned priors with a previously exported
// image.
func (p *Priors) ImportState(st PriorsState) error {
	staged := make(map[string]*namePrior, len(st))
	for name, masses := range st {
		np := &namePrior{mass: make(map[int64]float64, len(masses))}
		for id, v := range masses {
			if !(v >= 0) {
				return fmt.Errorf("disambig: priors state %q/%d has invalid mass %v", name, id, v)
			}
			np.mass[id] = v
			np.total += v
		}
		staged[name] = np
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.names = staged
	return nil
}
