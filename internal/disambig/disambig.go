// Package disambig resolves ambiguous geographic names to probability
// distributions over their gazetteer references (paper RQ2c: "What methods
// can be used for Named Entities disambiguation in informal short text?").
// Because short text "lacks enough context", the resolver pools whatever
// evidence exists — population prominence, co-occurring toponyms, country
// hints, ontology containment — into a distribution rather than a single
// forced choice, feeding the probabilistic database downstream.
package disambig

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/gazetteer"
	"repro/internal/geo"
	"repro/internal/ontology"
	"repro/internal/uncertain"
)

// Context carries the evidence available when resolving one mention.
type Context struct {
	// CoToponyms are the candidate sets of other location mentions in the
	// same message; candidates geographically coherent with them score
	// higher.
	CoToponyms [][]*gazetteer.Entry
	// CountryHint is an ISO-like code when the message names a country
	// explicitly.
	CountryHint string
	// Anchor is a resolved nearby point (e.g. from a spatial relation
	// phrase), boosting candidates close to it.
	Anchor *geo.Point
	// PreferCities biases toward populated places, appropriate for
	// "in <X>" mentions.
	PreferCities bool
}

// Resolution is the outcome of disambiguating one name.
type Resolution struct {
	Name string
	// Candidates are the references considered, most probable first.
	Candidates []Candidate
	// Country is the induced distribution over country display names,
	// the paper's "Country: P(Germany) > P(USA) > …" template field.
	Country *uncertain.Dist
	// Entropy of the reference distribution in bits; 0 means resolved.
	Entropy float64
}

// Candidate is one reference with its posterior probability.
type Candidate struct {
	Entry *gazetteer.Entry
	P     float64
}

// Best returns the most probable candidate, or false when none exist.
func (r Resolution) Best() (Candidate, bool) {
	if len(r.Candidates) == 0 {
		return Candidate{}, false
	}
	return r.Candidates[0], true
}

// Resolver scores candidates against context.
type Resolver struct {
	Gaz *gazetteer.Gazetteer
	Ont *ontology.Ontology
	// CoherenceRadiusMeters is the distance at which co-toponym support
	// halves (default 300 km).
	CoherenceRadiusMeters float64
	// Priors is the reinforcement memory learned from user feedback;
	// nil disables the learned boost. Set once at construction — the
	// Priors value itself is internally synchronised.
	Priors *Priors
}

// NewResolver returns a resolver with default parameters.
func NewResolver(g *gazetteer.Gazetteer, o *ontology.Ontology) *Resolver {
	return &Resolver{Gaz: g, Ont: o, CoherenceRadiusMeters: 300000}
}

// Resolve disambiguates a name with full evidence pooling.
func (r *Resolver) Resolve(name string, ctx Context) (Resolution, error) {
	entries := r.Gaz.Lookup(name)
	return r.resolveEntries(name, entries, ctx, false)
}

// ResolveEntries disambiguates over an explicit candidate set (e.g. the
// candidates a fuzzy lookup attached to a NER mention).
func (r *Resolver) ResolveEntries(name string, ids []int64, ctx Context) (Resolution, error) {
	entries := make([]*gazetteer.Entry, 0, len(ids))
	for _, id := range ids {
		if e, ok := r.Gaz.Get(id); ok {
			entries = append(entries, e)
		}
	}
	return r.resolveEntries(name, entries, ctx, false)
}

// ResolvePriorOnly is the population-prominence baseline for the E6
// ablation: no context evidence at all.
func (r *Resolver) ResolvePriorOnly(name string) (Resolution, error) {
	entries := r.Gaz.Lookup(name)
	return r.resolveEntries(name, entries, Context{}, true)
}

func (r *Resolver) resolveEntries(name string, entries []*gazetteer.Entry, ctx Context, priorOnly bool) (Resolution, error) {
	if name == "" {
		return Resolution{}, fmt.Errorf("disambig: empty name")
	}
	res := Resolution{Name: name, Country: uncertain.NewDist()}
	if len(entries) == 0 {
		return res, nil
	}
	dist := uncertain.NewDist()
	byKey := make(map[string]*gazetteer.Entry, len(entries))
	for _, e := range entries {
		score := r.prior(e, ctx)
		if !priorOnly {
			score *= r.contextBoost(e, ctx)
			// Reinforcement from confirmed feedback: interpretations users
			// have validated outrank equally plausible ones. Excluded from
			// the prior-only ablation baseline along with all context.
			if r.Priors != nil {
				score *= r.Priors.Boost(name, e.ID)
			}
		}
		key := strconv.FormatInt(e.ID, 10)
		byKey[key] = e
		if err := dist.Set(key, score); err != nil {
			return Resolution{}, err
		}
	}
	alts := dist.Normalized()
	res.Candidates = make([]Candidate, 0, len(alts))
	for _, a := range alts {
		e := byKey[a.Name]
		res.Candidates = append(res.Candidates, Candidate{Entry: e, P: a.P})
		country := e.Country
		if c, ok := gazetteer.CountryByCode(e.Country); ok {
			country = c.Name
		}
		if err := res.Country.Add(country, a.P); err != nil {
			return Resolution{}, err
		}
	}
	// Stable order: probability desc, then entry ID.
	sort.SliceStable(res.Candidates, func(i, j int) bool {
		if res.Candidates[i].P != res.Candidates[j].P {
			return res.Candidates[i].P > res.Candidates[j].P
		}
		return res.Candidates[i].Entry.ID < res.Candidates[j].Entry.ID
	})
	res.Entropy = dist.Entropy()
	return res, nil
}

// prior scores a candidate on prominence alone: log population plus a
// feature-class preference.
func (r *Resolver) prior(e *gazetteer.Entry, ctx Context) float64 {
	score := 1 + math.Log1p(float64(e.Population))
	if ctx.PreferCities && e.Feature == gazetteer.FeatureCity {
		score *= 2
	}
	return score
}

// contextBoost multiplies in the context evidence.
func (r *Resolver) contextBoost(e *gazetteer.Entry, ctx Context) float64 {
	boost := 1.0
	// Explicit country hint dominates.
	if ctx.CountryHint != "" {
		if e.Country == ctx.CountryHint {
			boost *= 8
		} else {
			boost *= 0.25
		}
	}
	// Ontology containment: if the curated knowledge says this name lives
	// in country C, candidates in C gain modest support. Kept weaker than
	// direct message evidence so live context can override the default.
	if code, ok := r.Ont.CountryOf(e.Name); ok {
		if e.Country == code {
			boost *= 2
		}
	}
	// Co-toponym coherence: support from other mentions' candidates decays
	// with distance. Each co-mention contributes its best support.
	for _, cands := range ctx.CoToponyms {
		best := 0.0
		for _, other := range cands {
			if other.ID == e.ID {
				continue
			}
			d := e.Location.DistanceMeters(other.Location)
			support := math.Exp(-d / r.CoherenceRadiusMeters)
			// Same-country co-mentions lend a floor of support even when
			// distant (a message about "Berlin" and "Munich" coheres).
			if other.Country == e.Country && support < 0.3 {
				support = 0.3
			}
			if support > best {
				best = support
			}
		}
		boost *= 1 + 6*best
	}
	// Anchor proximity is strong, near-direct evidence.
	if ctx.Anchor != nil {
		d := e.Location.DistanceMeters(*ctx.Anchor)
		boost *= 1 + 10*math.Exp(-d/r.CoherenceRadiusMeters)
	}
	return boost
}

// GroundRelative resolves a relative reference (RQ2d): given an anchor
// point and a fuzzy region built from a relation phrase, it returns the
// membership-weighted centroid as a concrete location estimate with an
// uncertainty radius derived from the region's extent.
func GroundRelative(region geo.FuzzyRegion) (geo.Point, float64, bool) {
	centroid, peak, ok := geo.RegionCentroid(region, 32)
	if !ok || peak == 0 {
		return geo.Point{}, 0, false
	}
	b := region.Bounds()
	radius := b.Center().DistanceMeters(geo.Point{Lat: b.MaxLat, Lon: b.MaxLon})
	return centroid, radius, true
}
