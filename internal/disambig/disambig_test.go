package disambig

import (
	"math"
	"testing"

	"repro/internal/gazetteer"
	"repro/internal/geo"
	"repro/internal/ontology"
)

type fixture struct {
	gaz      *gazetteer.Gazetteer
	ont      *ontology.Ontology
	resolver *Resolver
	ids      map[string]int64 // "name/country" -> ID
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{gaz: gazetteer.New(), ids: make(map[string]int64)}
	add := func(name string, lat, lon float64, country string, pop int64, fc gazetteer.FeatureClass) {
		t.Helper()
		e, err := f.gaz.Add(gazetteer.Entry{
			Name: name, Location: geo.Point{Lat: lat, Lon: lon},
			Feature: fc, Country: country, Population: pop,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.ids[name+"/"+country] = e.ID
	}
	add("Berlin", 52.52, 13.405, "DE", 3_700_000, gazetteer.FeatureCity)
	add("Berlin", 44.47, -71.18, "US", 10_000, gazetteer.FeatureCity)
	add("Paris", 48.85, 2.35, "FR", 2_100_000, gazetteer.FeatureCity)
	add("Paris", 33.66, -95.55, "US", 25_000, gazetteer.FeatureCity)
	add("Potsdam", 52.39, 13.06, "DE", 180_000, gazetteer.FeatureCity)
	add("Potsdam", 44.66, -74.98, "US", 9_000, gazetteer.FeatureCity)
	add("Cairo", 30.04, 31.23, "EG", 9_500_000, gazetteer.FeatureCity)
	add("Cairo", 37.00, -89.17, "US", 2_500, gazetteer.FeatureCity)
	add("Mill Creek", 40.0, -100.0, "US", 0, gazetteer.FeatureStream)
	f.ont = ontology.New()
	f.ont.LoadContainment(f.gaz)
	f.resolver = NewResolver(f.gaz, f.ont)
	return f
}

func TestResolvePriorPrefersPopulous(t *testing.T) {
	f := newFixture(t)
	res, err := f.resolver.ResolvePriorOnly("Berlin")
	if err != nil {
		t.Fatal(err)
	}
	best, ok := res.Best()
	if !ok {
		t.Fatal("no candidates")
	}
	if best.Entry.Country != "DE" {
		t.Errorf("prior-only best = %s/%s", best.Entry.Name, best.Entry.Country)
	}
	if best.P <= 0.5 {
		t.Errorf("best probability = %v", best.P)
	}
	// Country distribution mirrors the candidates.
	if res.Country.P("Germany") <= res.Country.P("United States") {
		t.Errorf("country dist: %v", res.Country.Normalized())
	}
}

func TestResolveCountryHintOverridesPrior(t *testing.T) {
	f := newFixture(t)
	res, err := f.resolver.Resolve("Berlin", Context{CountryHint: "US"})
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Best()
	if best.Entry.Country != "US" {
		t.Errorf("hinted best = %s/%s", best.Entry.Name, best.Entry.Country)
	}
}

func TestResolveCoToponymCoherence(t *testing.T) {
	f := newFixture(t)
	// "Potsdam" near "Berlin": the German pair should cohere; likewise the
	// US pair when the co-mention is the US Berlin.
	deBerlin, _ := f.gaz.Get(f.ids["Berlin/DE"])
	usBerlin, _ := f.gaz.Get(f.ids["Berlin/US"])

	res, err := f.resolver.Resolve("Potsdam", Context{
		CoToponyms: [][]*gazetteer.Entry{{deBerlin}},
	})
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Best()
	if best.Entry.Country != "DE" {
		t.Errorf("with German co-toponym, best = %s", best.Entry.Country)
	}

	res, err = f.resolver.Resolve("Potsdam", Context{
		CoToponyms: [][]*gazetteer.Entry{{usBerlin}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// US Potsdam is ~330 km from US Berlin; German Potsdam has a 20x
	// population prior. Coherence must at least close most of the gap.
	var pUS, pDE float64
	for _, c := range res.Candidates {
		switch c.Entry.Country {
		case "US":
			pUS = c.P
		case "DE":
			pDE = c.P
		}
	}
	noCtx, _ := f.resolver.ResolvePriorOnly("Potsdam")
	var pUSprior float64
	for _, c := range noCtx.Candidates {
		if c.Entry.Country == "US" {
			pUSprior = c.P
		}
	}
	if pUS <= pUSprior {
		t.Errorf("US co-toponym did not raise P(US Potsdam): %v <= %v (DE %v)", pUS, pUSprior, pDE)
	}
}

func TestResolveAnchorProximity(t *testing.T) {
	f := newFixture(t)
	anchor := geo.Point{Lat: 37.0, Lon: -89.0} // near Cairo, Illinois
	res, err := f.resolver.Resolve("Cairo", Context{Anchor: &anchor})
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Best()
	if best.Entry.Country != "US" {
		t.Errorf("anchored best = %s/%s; candidates %+v", best.Entry.Name, best.Entry.Country, res.Candidates)
	}
}

func TestResolveUnknownName(t *testing.T) {
	f := newFixture(t)
	res, err := f.resolver.Resolve("Atlantis", Context{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 0 {
		t.Errorf("unknown name candidates: %+v", res.Candidates)
	}
	if _, ok := res.Best(); ok {
		t.Error("unknown name has a best candidate")
	}
	if _, err := f.resolver.Resolve("", Context{}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestResolveProbabilitiesSumToOne(t *testing.T) {
	f := newFixture(t)
	for _, name := range []string{"Berlin", "Paris", "Cairo", "Potsdam"} {
		res, err := f.resolver.Resolve(name, Context{})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, c := range res.Candidates {
			if c.P < 0 || c.P > 1 {
				t.Errorf("%s: probability out of range: %v", name, c.P)
			}
			sum += c.P
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: probabilities sum to %v", name, sum)
		}
		var csum float64
		for _, a := range res.Country.Normalized() {
			csum += a.P
		}
		if math.Abs(csum-1) > 1e-9 {
			t.Errorf("%s: country probabilities sum to %v", name, csum)
		}
	}
}

func TestResolveEntropyDropsWithEvidence(t *testing.T) {
	f := newFixture(t)
	noCtx, err := f.resolver.ResolvePriorOnly("Potsdam")
	if err != nil {
		t.Fatal(err)
	}
	deBerlin, _ := f.gaz.Get(f.ids["Berlin/DE"])
	withCtx, err := f.resolver.Resolve("Potsdam", Context{
		CoToponyms: [][]*gazetteer.Entry{{deBerlin}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if withCtx.Entropy >= noCtx.Entropy {
		t.Errorf("entropy did not drop with evidence: %v >= %v", withCtx.Entropy, noCtx.Entropy)
	}
}

func TestResolveEntries(t *testing.T) {
	f := newFixture(t)
	ids := []int64{f.ids["Berlin/DE"], f.ids["Berlin/US"]}
	res, err := f.resolver.ResolveEntries("berlin", ids, Context{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
	// Unknown IDs are skipped silently.
	res, err = f.resolver.ResolveEntries("berlin", []int64{99999}, Context{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 0 {
		t.Errorf("ghost candidates: %+v", res.Candidates)
	}
}

func TestPreferCities(t *testing.T) {
	f := newFixture(t)
	// Add a stream named Paris to compete with the cities.
	if _, err := f.gaz.Add(gazetteer.Entry{
		Name: "Paris", Location: geo.Point{Lat: 45, Lon: -93},
		Feature: gazetteer.FeatureStream, Country: "US",
	}); err != nil {
		t.Fatal(err)
	}
	res, err := f.resolver.Resolve("Paris", Context{PreferCities: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.Entry.Feature == gazetteer.FeatureStream && c.P >= res.Candidates[0].P {
			t.Error("stream outranked cities despite PreferCities")
		}
	}
}

func TestGroundRelative(t *testing.T) {
	berlin := geo.Point{Lat: 52.52, Lon: 13.405}
	region := geo.NewDirectionRegion(berlin, 0)
	pt, radius, ok := GroundRelative(region)
	if !ok {
		t.Fatal("grounding failed")
	}
	if pt.Lat <= berlin.Lat {
		t.Errorf("grounded point %v not north of anchor", pt)
	}
	if radius <= 0 {
		t.Errorf("radius = %v", radius)
	}
	// Disjoint intersection grounds nothing.
	empty := geo.IntersectRegions{
		geo.NewNearRegion(berlin, 100),
		geo.NewNearRegion(geo.Point{Lat: -33, Lon: 151}, 100),
	}
	if _, _, ok := GroundRelative(empty); ok {
		t.Error("empty region grounded")
	}
}
