package disambig

import (
	"testing"

	"repro/internal/gazetteer"
	"repro/internal/geo"
	"repro/internal/ontology"
)

// ambiguousParis builds a gazetteer where the population prior favours
// Paris (FR) over Paris (TX).
func ambiguousParis(t *testing.T) (*gazetteer.Gazetteer, *gazetteer.Entry, *gazetteer.Entry) {
	t.Helper()
	g := gazetteer.New()
	fr, err := g.Add(gazetteer.Entry{Name: "Paris", Location: geo.Point{Lat: 48.8566, Lon: 2.3522}, Country: "FR", Population: 2_100_000, Feature: gazetteer.FeatureCity})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := g.Add(gazetteer.Entry{Name: "Paris", Location: geo.Point{Lat: 33.6609, Lon: -95.5555}, Country: "US", Population: 25_000, Feature: gazetteer.FeatureCity})
	if err != nil {
		t.Fatal(err)
	}
	return g, fr, tx
}

// TestPriorsReinforcementFlipsResolution is the paper's reinforcement
// effect in isolation: before feedback, prominence picks Paris (FR);
// after repeated confirmations of the Texas interpretation, the same
// mention resolves to Paris (TX).
func TestPriorsReinforcementFlipsResolution(t *testing.T) {
	g, fr, tx := ambiguousParis(t)
	r := NewResolver(g, ontology.New())

	res, err := r.Resolve("Paris", Context{})
	if err != nil {
		t.Fatal(err)
	}
	best, ok := res.Best()
	if !ok || best.Entry.ID != fr.ID {
		t.Fatalf("baseline resolution picked entry %+v, want Paris (FR)", best.Entry)
	}
	baselineTX := candidateP(res, tx.ID)

	p := NewPriors()
	r.Priors = p
	for i := 0; i < 5; i++ {
		p.Reinforce("Paris", tx.ID, 1)
	}
	res2, err := r.Resolve("Paris", Context{})
	if err != nil {
		t.Fatal(err)
	}
	best2, _ := res2.Best()
	if best2.Entry.ID != tx.ID {
		t.Fatalf("after 5 confirmations resolution still picks entry %d, want Paris (TX) %d", best2.Entry.ID, tx.ID)
	}
	if got := candidateP(res2, tx.ID); got <= baselineTX {
		t.Errorf("P(Paris TX) after reinforcement = %v, want > baseline %v", got, baselineTX)
	}

	// The prior-only ablation baseline must stay blind to reinforcement.
	res3, err := r.ResolvePriorOnly("Paris")
	if err != nil {
		t.Fatal(err)
	}
	if best3, _ := res3.Best(); best3.Entry.ID != fr.ID {
		t.Errorf("prior-only baseline uses learned priors (picked %d)", best3.Entry.ID)
	}
}

func candidateP(res Resolution, id int64) float64 {
	for _, c := range res.Candidates {
		if c.Entry.ID == id {
			return c.P
		}
	}
	return 0
}

// TestPriorsBoostShape pins the boost formula's invariants: unknown
// names and entries are neutral, boosts grow with confirmations, and
// mass on one entry never boosts another.
func TestPriorsBoostShape(t *testing.T) {
	p := NewPriors()
	if b := p.Boost("Nowhere", 1); b != 1 {
		t.Errorf("unknown name boost = %v", b)
	}
	p.Reinforce("Paris", 1, 1)
	one := p.Boost("Paris", 1)
	if one <= 1 {
		t.Fatalf("boost after one confirmation = %v, want > 1", one)
	}
	if b := p.Boost("Paris", 2); b != 1 {
		t.Errorf("unconfirmed sibling entry boosted: %v", b)
	}
	p.Reinforce("Paris", 1, 1)
	p.Reinforce("Paris", 1, 1)
	if b := p.Boost("Paris", 1); b <= one {
		t.Errorf("boost does not grow with confirmations: %v <= %v", b, one)
	}
	// Normalisation: the same surface name in different case shares mass.
	if b := p.Boost("paris", 1); b <= 1 {
		t.Errorf("case-normalised lookup missed the learned prior: %v", b)
	}
	// Invalid reinforcements are ignored.
	p.Reinforce("", 1, 1)
	p.Reinforce("Paris", 0, 1)
	p.Reinforce("Paris", 1, -5)
	if p.Names() != 1 {
		t.Errorf("invalid reinforcements created names: %d", p.Names())
	}
}

// TestPriorsStateRoundTrip: export/import preserves boosts exactly.
func TestPriorsStateRoundTrip(t *testing.T) {
	p := NewPriors()
	p.Reinforce("Paris", 7, 2)
	p.Reinforce("Paris", 9, 1)
	p.Reinforce("Springfield", 3, 4)

	q := NewPriors()
	if err := q.ImportState(p.ExportState()); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		id   int64
	}{{"Paris", 7}, {"Paris", 9}, {"Springfield", 3}} {
		if got, want := q.Boost(tc.name, tc.id), p.Boost(tc.name, tc.id); got != want {
			t.Errorf("Boost(%s, %d) after round trip = %v, want %v", tc.name, tc.id, got, want)
		}
	}
	if err := q.ImportState(nil); err != nil {
		t.Fatal(err)
	}
	if q.Names() != 0 {
		t.Errorf("ImportState(nil) left %d names", q.Names())
	}
}
