package mq

import (
	"bytes"
	"encoding/json"
	"testing"
)

// walSeeds are realistic log contents: a clean log, an empty log, a
// dead-letter log, and several torn-tail shapes (cut mid-JSON, missing
// the final newline, garbage after a valid prefix).
func walSeeds() [][]byte {
	enq := `{"op":"enq","msg":{"ID":1,"Body":"CROWD near bridge","Source":"+1555","Tag":"geo"}}` + "\n"
	ack := `{"op":"ack","id":1}` + "\n"
	dead := `{"op":"dead","id":2,"msg":{"ID":2,"Body":"poison"}}` + "\n"
	return [][]byte{
		nil,
		[]byte(enq),
		[]byte(enq + ack),
		[]byte(enq + ack + dead),
		[]byte(enq + `{"op":"ack",`),        // cut mid-entry
		[]byte(enq + ack[:len(ack)-1]),      // missing final newline
		[]byte(enq + "\x00\xff not json\n"), // binary garbage line
		[]byte("\n\n" + enq),                // blank lines are tolerated
		[]byte(`{"op":"enq","msg":{}}`),     // single entry, no newline
		bytes.Repeat([]byte(enq), 64),       // longer clean log
	}
}

// FuzzWALScan checks the replay invariants that recovery (and the
// durability checkpointing built on LSNs) depend on, under arbitrary
// corruption:
//
//  1. never panics, never errors on in-memory input;
//  2. 0 <= validEnd <= len(data), and the valid prefix ends exactly at
//     a newline (or is empty) — so truncating there leaves a log whose
//     next append starts a fresh line;
//  3. rescanning the valid prefix is idempotent: same entries, same
//     validEnd — the second boot after a torn-tail truncation replays
//     exactly what the first one did;
//  4. appending a well-formed entry after the valid prefix extends the
//     replay by exactly that entry — truncation never poisons appends.
func FuzzWALScan(f *testing.F) {
	for _, seed := range walSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, validEnd, err := scanWAL(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatalf("scanWAL errored on in-memory input: %v", err)
		}
		if validEnd < 0 || validEnd > int64(len(data)) {
			t.Fatalf("validEnd %d out of range [0,%d]", validEnd, len(data))
		}
		if validEnd > 0 && data[validEnd-1] != '\n' {
			t.Fatalf("valid prefix does not end at a newline: data[%d-1] = %q", validEnd, data[validEnd-1])
		}

		prefix := data[:validEnd]
		entries2, validEnd2, err := scanWAL(bytes.NewReader(prefix), validEnd)
		if err != nil {
			t.Fatalf("rescanning valid prefix errored: %v", err)
		}
		if validEnd2 != validEnd {
			t.Fatalf("rescan moved validEnd: %d != %d", validEnd2, validEnd)
		}
		if len(entries2) != len(entries) {
			t.Fatalf("rescan changed entry count: %d != %d", len(entries2), len(entries))
		}
		for i := range entries {
			a, _ := json.Marshal(entries[i])
			b, _ := json.Marshal(entries2[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("rescan changed entry %d: %s != %s", i, a, b)
			}
		}

		appended, err := json.Marshal(walEntry{Op: opAck, ID: 99})
		if err != nil {
			t.Fatal(err)
		}
		grown := append(append(append([]byte(nil), prefix...), appended...), '\n')
		entries3, validEnd3, err := scanWAL(bytes.NewReader(grown), int64(len(grown)))
		if err != nil {
			t.Fatalf("scanning grown log errored: %v", err)
		}
		if len(entries3) != len(entries)+1 {
			t.Fatalf("append after truncation point not replayed: %d entries, want %d", len(entries3), len(entries)+1)
		}
		if validEnd3 != int64(len(grown)) {
			t.Fatalf("grown log has a torn tail: validEnd %d, size %d", validEnd3, len(grown))
		}
		last := entries3[len(entries3)-1]
		if last.Op != opAck || last.ID != 99 {
			t.Fatalf("appended entry replayed wrong: %+v", last)
		}
	})
}
