package mq

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// Exactly-once ack accounting under contention: producers and consumers
// hammer the queue from many goroutines; every message must be delivered,
// acked exactly once, and never lost. Run with -race.
func TestConcurrentEnqueueDequeueAckExactlyOnce(t *testing.T) {
	const (
		producers   = 4
		consumers   = 4
		perProducer = 250
		total       = producers * perProducer
	)
	q := New()

	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := q.Enqueue(fmt.Sprintf("msg p%d i%d", p, i), "src"); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}(p)
	}

	var mu sync.Mutex
	acked := make(map[int64]int)
	var consWG sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				m, ok := q.Dequeue()
				if !ok {
					continue
				}
				if err := q.Ack(m.ID); err != nil {
					t.Errorf("ack %d: %v", m.ID, err)
					return
				}
				mu.Lock()
				acked[m.ID]++
				n := len(acked)
				mu.Unlock()
				if n == total {
					close(done)
					return
				}
			}
		}()
	}
	prodWG.Wait()
	consWG.Wait()

	if len(acked) != total {
		t.Fatalf("acked %d distinct messages, want %d", len(acked), total)
	}
	for id, n := range acked {
		if n != 1 {
			t.Fatalf("message %d acked %d times", id, n)
		}
	}
	if q.Len() != 0 || q.InFlight() != 0 {
		t.Fatalf("queue not drained: pending=%d inflight=%d", q.Len(), q.InFlight())
	}
	if dead := q.DeadLetters(); len(dead) != 0 {
		t.Fatalf("%d messages dead-lettered", len(dead))
	}
}

// Redelivery correctness under contention: each message is nacked on its
// first delivery and acked on a later one. Nothing is lost, nothing is
// double-acked, and attempt counts stay within the redelivery budget.
func TestConcurrentNackRedelivery(t *testing.T) {
	const total = 300
	q := New(WithMaxAttempts(10))
	for i := 0; i < total; i++ {
		if _, err := q.Enqueue(fmt.Sprintf("msg %d", i), "src"); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	seen := make(map[int64]int)
	acked := make(map[int64]bool)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				m, ok := q.Dequeue()
				if !ok {
					continue
				}
				mu.Lock()
				seen[m.ID]++
				first := seen[m.ID] == 1
				mu.Unlock()
				if first {
					if err := q.Nack(m.ID); err != nil {
						t.Errorf("nack %d: %v", m.ID, err)
						return
					}
					continue
				}
				if err := q.Ack(m.ID); err != nil {
					t.Errorf("ack %d: %v", m.ID, err)
					return
				}
				mu.Lock()
				if acked[m.ID] {
					t.Errorf("message %d acked twice", m.ID)
				}
				acked[m.ID] = true
				n := len(acked)
				mu.Unlock()
				if n == total {
					close(done)
					return
				}
			}
		}()
	}
	wg.Wait()

	if len(acked) != total {
		t.Fatalf("acked %d messages, want %d", len(acked), total)
	}
	if q.Len() != 0 || q.InFlight() != 0 {
		t.Fatalf("queue not drained: pending=%d inflight=%d", q.Len(), q.InFlight())
	}
}

func TestAckBatch(t *testing.T) {
	q := New()
	var ids []int64
	for i := 0; i < 10; i++ {
		id, err := q.Enqueue(fmt.Sprintf("msg %d", i), "src")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for range ids {
		if _, ok := q.Dequeue(); !ok {
			t.Fatal("dequeue failed")
		}
	}
	acked, err := q.AckBatch(ids)
	if err != nil {
		t.Fatalf("AckBatch: %v", err)
	}
	if len(acked) != len(ids) {
		t.Fatalf("acked %d of %d", len(acked), len(ids))
	}
	if q.Len() != 0 || q.InFlight() != 0 {
		t.Fatalf("queue not drained: pending=%d inflight=%d", q.Len(), q.InFlight())
	}
	// Unknown IDs are reported but do not poison the batch, and the
	// partial success names which IDs really were acknowledged.
	id, err := q.Enqueue("one more", "src")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Dequeue(); !ok {
		t.Fatal("dequeue failed")
	}
	acked, err = q.AckBatch([]int64{id, 9999})
	if err == nil {
		t.Fatal("AckBatch with unknown id returned nil error")
	}
	if len(acked) != 1 || acked[0] != id {
		t.Fatalf("partial ack = %v, want [%d]", acked, id)
	}
	if q.InFlight() != 0 {
		t.Fatalf("valid id not acked alongside unknown id: inflight=%d", q.InFlight())
	}
}

// A batch-acked WAL queue must not redeliver those messages on reopen.
func TestAckBatchWALDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 5; i++ {
		id, err := q.Enqueue(fmt.Sprintf("msg %d", i), "src")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	keep, err := q.Enqueue("survivor", "src")
	if err != nil {
		t.Fatal(err)
	}
	for range ids {
		if _, ok := q.Dequeue(); !ok {
			t.Fatal("dequeue failed")
		}
	}
	if _, err := q.AckBatch(ids[:5]); err != nil {
		t.Fatalf("AckBatch: %v", err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != 1 {
		t.Fatalf("reopened queue has %d pending, want 1", got)
	}
	m, ok := re.Dequeue()
	if !ok || m.ID != keep {
		t.Fatalf("reopened queue delivered %+v, want id %d", m, keep)
	}
}
