package mq

import (
	"path/filepath"
	"testing"
)

// TestTraceSurvivesWALReplay pins the envelope contract the tracing
// layer depends on: a trace ID attached at enqueue is in the WAL entry
// and comes back intact when the log is replayed after a restart.
func TestTraceSurvivesWALReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := q.EnqueueTraced("pothole on 5th", "+15550001", "deadbeefcafef00d")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	m, ok := q2.Dequeue()
	if !ok {
		t.Fatal("message lost across replay")
	}
	if m.ID != id || m.Trace != "deadbeefcafef00d" {
		t.Fatalf("replayed message = %+v, want ID %d with trace deadbeefcafef00d", m, id)
	}
}
