package mq

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
}

func TestEnqueueDequeueFIFO(t *testing.T) {
	q := New()
	for i := 0; i < 3; i++ {
		if _, err := q.Enqueue(fmt.Sprintf("msg-%d", i), "alice"); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 3; i++ {
		m, ok := q.Dequeue()
		if !ok {
			t.Fatalf("Dequeue %d failed", i)
		}
		if m.Body != fmt.Sprintf("msg-%d", i) {
			t.Errorf("out of order: %q at %d", m.Body, i)
		}
		if err := q.Ack(m.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Error("dequeue from empty queue succeeded")
	}
}

func TestEnqueueValidation(t *testing.T) {
	q := New()
	if _, err := q.Enqueue("", "x"); err == nil {
		t.Error("empty body accepted")
	}
}

func TestAckNackSemantics(t *testing.T) {
	q := New()
	id, err := q.Enqueue("hello", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Ack(id); err == nil {
		t.Error("ack of unleased message succeeded")
	}
	m, _ := q.Dequeue()
	if q.InFlight() != 1 {
		t.Errorf("InFlight = %d", q.InFlight())
	}
	if err := q.Nack(m.ID); err != nil {
		t.Fatal(err)
	}
	// Redelivered immediately with incremented attempts.
	m2, ok := q.Dequeue()
	if !ok || m2.ID != m.ID {
		t.Fatalf("redelivery failed: %+v", m2)
	}
	if m2.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", m2.Attempts)
	}
	if err := q.Ack(m2.ID); err != nil {
		t.Fatal(err)
	}
	if err := q.Nack(m2.ID); err == nil {
		t.Error("nack after ack succeeded")
	}
}

func TestVisibilityTimeoutRedelivery(t *testing.T) {
	now := time.Date(2011, 4, 1, 12, 0, 0, 0, time.UTC)
	q := New(
		WithVisibility(10*time.Second),
		WithClock(func() time.Time { return now }),
	)
	if _, err := q.Enqueue("lost message", "carol"); err != nil {
		t.Fatal(err)
	}
	m, _ := q.Dequeue()
	// Consumer crashes; lease expires.
	if _, ok := q.Dequeue(); ok {
		t.Error("message redelivered before lease expiry")
	}
	now = now.Add(11 * time.Second)
	m2, ok := q.Dequeue()
	if !ok || m2.ID != m.ID {
		t.Fatal("expired lease not reclaimed")
	}
}

func TestDeadLetterAfterMaxAttempts(t *testing.T) {
	q := New(WithMaxAttempts(2))
	id, err := q.Enqueue("poison", "dave")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m, ok := q.Dequeue()
		if !ok {
			t.Fatalf("dequeue %d failed", i)
		}
		if err := q.Nack(m.ID); err != nil {
			t.Fatal(err)
		}
	}
	// Third attempt exceeds the limit: moved to dead letters.
	if _, ok := q.Dequeue(); ok {
		t.Error("poison message delivered beyond max attempts")
	}
	dead := q.DeadLetters()
	if len(dead) != 1 || dead[0].ID != id {
		t.Errorf("dead letters = %+v", dead)
	}
}

func TestTag(t *testing.T) {
	q := New()
	id, _ := q.Enqueue("is this a question?", "eve")
	if err := q.Tag(id, "request"); err != nil {
		t.Fatal(err)
	}
	m, _ := q.Dequeue()
	if m.Tag != "request" {
		t.Errorf("tag = %q", m.Tag)
	}
	if err := q.Tag(999, "x"); err == nil {
		t.Error("tag of missing message succeeded")
	}
}

func TestWALPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("first", "a"); err != nil {
		t.Fatal(err)
	}
	id2, err := q.Enqueue("second", "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("third", "c"); err != nil {
		t.Fatal(err)
	}
	// Ack the second message only.
	m, _ := q.Dequeue() // first
	first := m.ID
	_ = first
	m2, _ := q.Dequeue()
	if m2.ID != id2 {
		// Dequeue order: first then second; ack second.
		t.Fatalf("unexpected order: %+v", m2)
	}
	if err := q.Ack(id2); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: first and third survive (first's lease is not persisted, so
	// it is pending again), second is gone.
	q2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if q2.Len() != 2 {
		t.Fatalf("recovered Len = %d, want 2", q2.Len())
	}
	var bodies []string
	for {
		m, ok := q2.Dequeue()
		if !ok {
			break
		}
		bodies = append(bodies, m.Body)
		if err := q2.Ack(m.ID); err != nil {
			t.Fatal(err)
		}
	}
	if len(bodies) != 2 || bodies[0] != "first" || bodies[1] != "third" {
		t.Errorf("recovered bodies = %v", bodies)
	}
	// IDs keep increasing after recovery.
	id4, err := q2.Enqueue("fourth", "d")
	if err != nil {
		t.Fatal(err)
	}
	if id4 <= id2 {
		t.Errorf("recovered nextID regressed: %d", id4)
	}
}

func TestWALTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("ok", "a"); err != nil {
		t.Fatal(err)
	}
	q.Close()
	// Simulate a crash mid-write.
	f, err := openAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"enq","msg":{"id":2,"bo`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	q2, err := Open(path)
	if err != nil {
		t.Fatalf("torn wal rejected: %v", err)
	}
	defer q2.Close()
	if q2.Len() != 1 {
		t.Errorf("recovered Len = %d, want 1", q2.Len())
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := New()
	const producers, perProducer = 4, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := q.Enqueue(fmt.Sprintf("p%d-m%d", p, i), "src"); err != nil {
					t.Error(err)
				}
			}
		}(p)
	}
	wg.Wait()

	var mu sync.Mutex
	seen := make(map[int64]bool)
	var cwg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				m, ok := q.Dequeue()
				if !ok {
					return
				}
				mu.Lock()
				if seen[m.ID] {
					t.Errorf("message %d delivered twice", m.ID)
				}
				seen[m.ID] = true
				mu.Unlock()
				if err := q.Ack(m.ID); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	cwg.Wait()
	if len(seen) != producers*perProducer {
		t.Errorf("consumed %d of %d", len(seen), producers*perProducer)
	}
}

func TestStatsSnapshot(t *testing.T) {
	q := New(WithMaxAttempts(1))
	for i := 0; i < 4; i++ {
		if _, err := q.Enqueue(fmt.Sprintf("msg-%d", i), "alice"); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.Stats(); got != (Stats{Pending: 4}) {
		t.Fatalf("after enqueue: %+v", got)
	}

	// Lease two: one acked singly, one left in flight.
	m1, _ := q.Dequeue()
	m2, _ := q.Dequeue()
	if err := q.Ack(m1.ID); err != nil {
		t.Fatal(err)
	}
	if got := q.Stats(); got != (Stats{Pending: 2, InFlight: 1, Acked: 1}) {
		t.Fatalf("after single ack: %+v", got)
	}

	// Group-commit the in-flight one plus a freshly leased one.
	m3, _ := q.Dequeue()
	if _, err := q.AckBatch([]int64{m2.ID, m3.ID}); err != nil {
		t.Fatal(err)
	}
	if got := q.Stats(); got != (Stats{Pending: 1, Acked: 3}) {
		t.Fatalf("after batch ack: %+v", got)
	}

	// Exhaust the last message's single delivery attempt: nack it back,
	// and the redelivery attempt dead-letters it.
	m4, _ := q.Dequeue()
	if err := q.Nack(m4.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("message should have dead-lettered on redelivery")
	}
	if got := q.Stats(); got != (Stats{Acked: 3, DeadLettered: 1}) {
		t.Fatalf("after dead-letter: %+v", got)
	}
}

func TestStatsSurvivesWALReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := q.Enqueue(fmt.Sprintf("msg-%d", i), "alice"); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := q.Dequeue()
	if err := q.Ack(m.ID); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if got := q2.Stats(); got != (Stats{Pending: 2, Acked: 1}) {
		t.Fatalf("after replay: %+v", got)
	}
}
