// Package mq implements the paper's Messages Queue (MQ): "the queue of
// text messages received from users that need to be processed". It is a
// lease-based queue with acknowledgement, negative acknowledgement,
// visibility timeouts with automatic redelivery, and optional write-ahead
// logging so an interrupted pipeline can resume without losing user
// contributions.
package mq

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by Enqueue after Close: the queue no longer
// accepts new messages (its WAL handle is gone), so callers can branch on
// the condition instead of matching error strings.
var ErrClosed = errors.New("mq: queue closed")

// Message is one user contribution or request.
type Message struct {
	ID       int64
	Body     string
	Source   string    // sender identity (phone number, handle …)
	Received time.Time // enqueue time
	Attempts int       // delivery attempts so far
	// Tag is the message-type annotation the IE service attaches ("A tag
	// is then attached to the message on the MQ indicating its type").
	Tag string
	// Trace is the observability trace ID minted (or accepted via
	// X-Request-Id) when the message entered the system. It rides in the
	// envelope — and therefore in the WAL enqueue entry — so a message's
	// log lines keep the same ID across the queue hop and across replay
	// after a crash.
	Trace string `json:",omitempty"`
}

// Queue is a FIFO message queue with leases. All methods are safe for
// concurrent use.
type Queue struct {
	mu sync.Mutex
	// pending holds undelivered message IDs in order.
	pending []int64
	// messages maps ID to message for both pending and in-flight.
	messages map[int64]*Message
	// inflight maps ID to lease expiry.
	inflight map[int64]time.Time
	nextID   int64
	// visibility is the lease duration before redelivery.
	visibility time.Duration
	clock      func() time.Time
	wal        *wal
	maxAttempt int
	closed     bool
	dead       []*Message // messages that exhausted their attempts
	// acked counts successfully acknowledged messages over the queue's
	// lifetime (Stats).
	acked int
	// lsn counts WAL entries durably appended or replayed — the log
	// sequence number the durability subsystem's checkpoints record, so
	// recovery knows which acknowledgements postdate the last image. 0
	// without a WAL.
	lsn int64
	// replayAcked re-enqueues, at Open, messages whose ack landed after
	// ackedAfter — set when a checkpoint-recovered store needs the
	// messages integrated since the image replayed into it.
	replayAcked bool
	ackedAfter  int64
	// walErrs counts WAL appends that failed on a path that cannot
	// propagate them (the dead-letter move in Dequeue); surfaced in
	// Stats so operators see the log diverging instead of silence.
	walErrs int
}

// Option configures a queue.
type Option func(*Queue)

// WithVisibility sets the lease duration (default 30s).
func WithVisibility(d time.Duration) Option {
	return func(q *Queue) { q.visibility = d }
}

// WithClock overrides the time source (tests).
func WithClock(clock func() time.Time) Option {
	return func(q *Queue) { q.clock = clock }
}

// WithMaxAttempts sets how many deliveries a message gets before moving to
// the dead-letter list (default 5).
func WithMaxAttempts(n int) Option {
	return func(q *Queue) { q.maxAttempt = n }
}

// WithReplayAckedAfter makes Open re-enqueue messages whose
// acknowledgement was logged after WAL entry lsn. The durability
// subsystem passes the LSN recorded in the checkpoint it restored (0
// when it found none): messages acknowledged since that image were
// integrated into state the crash discarded, and re-integrating them is
// safe — integration folds a replayed message into its existing record.
// Dead-lettered messages (opDead entries) are never replayed; a log
// written before dead letters had their own op recorded them as plain
// acks, and those replay like any other post-cutoff ack — the one-time
// migration cost of pointing a durable boot at an old-format WAL.
// Without this option Open keeps acknowledged messages acknowledged.
func WithReplayAckedAfter(lsn int64) Option {
	return func(q *Queue) {
		q.replayAcked = true
		q.ackedAfter = lsn
	}
}

// New returns an in-memory queue.
func New(opts ...Option) *Queue {
	q := &Queue{
		messages:   make(map[int64]*Message),
		inflight:   make(map[int64]time.Time),
		nextID:     1,
		visibility: 30 * time.Second,
		clock:      time.Now,
		maxAttempt: 5,
	}
	for _, o := range opts {
		o(q)
	}
	return q
}

// Open returns a queue backed by a write-ahead log at path, replaying any
// existing log so unacknowledged messages survive restarts — and, under
// WithReplayAckedAfter, so do messages acknowledged after the last
// checkpoint, re-enqueued for idempotent re-integration. Dead-lettered
// messages replay into the dead-letter list, never back into pending.
func Open(path string, opts ...Option) (*Queue, error) {
	q := New(opts...)
	w, entries, err := openWAL(path)
	if err != nil {
		return nil, err
	}
	q.wal = w
	q.lsn = int64(len(entries))
	// ackLSN records where each acknowledgement sits in the log, so the
	// checkpoint cutoff can separate acks the image already covers from
	// acks whose effects the crash discarded.
	ackLSN := make(map[int64]int64)
	var deadIDs []int64
	for i, e := range entries {
		switch e.Op {
		case opEnqueue:
			m := e.Msg
			q.messages[m.ID] = &m
			if m.ID >= q.nextID {
				q.nextID = m.ID + 1
			}
		case opAck:
			ackLSN[e.ID] = int64(i + 1)
		case opDead:
			deadIDs = append(deadIDs, e.ID)
		}
	}
	for _, id := range deadIDs {
		m, ok := q.messages[id]
		if !ok {
			continue
		}
		q.dead = append(q.dead, m)
		delete(q.messages, id)
		delete(ackLSN, id)
	}
	for id, at := range ackLSN {
		if q.replayAcked && at > q.ackedAfter {
			// Acknowledged after the checkpoint image: stays enqueued for
			// re-integration. Its re-acknowledgement will land at a fresh
			// LSN past the next checkpoint's cutoff.
			continue
		}
		delete(q.messages, id)
		q.acked++
	}
	// Rebuild pending order by ID (receive order).
	for id := int64(1); id < q.nextID; id++ {
		if _, ok := q.messages[id]; ok {
			q.pending = append(q.pending, id)
		}
	}
	return q, nil
}

// Close stops the queue accepting new messages and releases the WAL file
// handle, if any. Closing twice is a no-op.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	if q.wal != nil {
		return q.wal.close()
	}
	return nil
}

// Enqueue adds a message and returns its ID. After Close it returns
// ErrClosed.
func (q *Queue) Enqueue(body, source string) (int64, error) {
	return q.EnqueueTraced(body, source, "")
}

// EnqueueTraced adds a message carrying a trace ID, which is persisted
// in the envelope (and the WAL) so observability follows the message
// across the queue hop and replay.
func (q *Queue) EnqueueTraced(body, source, trace string) (int64, error) {
	if body == "" {
		return 0, fmt.Errorf("mq: empty message body")
	}
	defer mEnqueueSeconds.Since(time.Now())
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	m := &Message{
		ID:       q.nextID,
		Body:     body,
		Source:   source,
		Received: q.clock(),
		Trace:    trace,
	}
	q.nextID++
	if q.wal != nil {
		if err := q.walAppend(walEntry{Op: opEnqueue, Msg: *m}); err != nil {
			return 0, fmt.Errorf("mq: wal: %w", err)
		}
	}
	q.messages[m.ID] = m
	q.pending = append(q.pending, m.ID)
	mEnqueued.Inc()
	return m.ID, nil
}

// Dequeue leases the next message. ok is false when the queue is empty.
// Expired leases are reclaimed first.
func (q *Queue) Dequeue() (Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.clock()
	q.reclaimExpired(now)
	for len(q.pending) > 0 {
		id := q.pending[0]
		q.pending = q.pending[1:]
		m, ok := q.messages[id]
		if !ok {
			continue
		}
		m.Attempts++
		if m.Attempts > q.maxAttempt {
			q.dead = append(q.dead, m)
			delete(q.messages, id)
			if q.wal != nil {
				// The move itself cannot fail back to the caller, so a
				// failed append is recorded rather than swallowed: the
				// message is dead-lettered in memory but the log no
				// longer agrees, and Stats surfaces that divergence.
				if err := q.walAppend(walEntry{Op: opDead, ID: id}); err != nil {
					q.walErrs++
					mWALAppendErrors.Inc()
				}
			}
			mDeadLettered.Inc()
			continue
		}
		q.inflight[id] = now.Add(q.visibility)
		return *m, true
	}
	return Message{}, false
}

func (q *Queue) reclaimExpired(now time.Time) {
	for id, deadline := range q.inflight {
		if now.After(deadline) {
			delete(q.inflight, id)
			q.pending = append(q.pending, id)
		}
	}
}

// Ack acknowledges a leased message, removing it permanently.
func (q *Queue) Ack(id int64) error {
	defer mAckSeconds.Since(time.Now())
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.inflight[id]; !ok {
		return fmt.Errorf("mq: message %d not in flight", id)
	}
	delete(q.inflight, id)
	delete(q.messages, id)
	if q.wal != nil {
		if err := q.walAppend(walEntry{Op: opAck, ID: id}); err != nil {
			return fmt.Errorf("mq: wal: %w", err)
		}
	}
	q.acked++
	mAcked.Inc()
	return nil
}

// AckBatch acknowledges a run of leased messages under one lock
// acquisition and one WAL group commit, returning the IDs it actually
// acknowledged. Every listed message that is in flight is acknowledged;
// IDs that are not in flight are reported in the returned error without
// blocking the rest of the batch. If the WAL write fails no message is
// acknowledged and acked is empty — callers can tell a total failure
// (acked empty) from a partial one (acked non-empty plus an error for
// the missing IDs).
func (q *Queue) AckBatch(ids []int64) (acked []int64, err error) {
	defer mAckSeconds.Since(time.Now())
	q.mu.Lock()
	defer q.mu.Unlock()
	var missing []int64
	valid := make([]int64, 0, len(ids))
	for _, id := range ids {
		if _, ok := q.inflight[id]; ok {
			valid = append(valid, id)
		} else {
			missing = append(missing, id)
		}
	}
	if q.wal != nil && len(valid) > 0 {
		entries := make([]walEntry, len(valid))
		for i, id := range valid {
			entries[i] = walEntry{Op: opAck, ID: id}
		}
		if err := q.walAppend(entries...); err != nil {
			return nil, fmt.Errorf("mq: wal: %w", err)
		}
	}
	for _, id := range valid {
		delete(q.inflight, id)
		delete(q.messages, id)
	}
	q.acked += len(valid)
	mAcked.Add(float64(len(valid)))
	if len(missing) > 0 {
		return valid, fmt.Errorf("mq: %d message(s) not in flight (first: %d)", len(missing), missing[0])
	}
	return valid, nil
}

// walAppend appends entries as one group commit and advances the log
// sequence number by however many entries became durable. Callers hold
// q.mu.
func (q *Queue) walAppend(entries ...walEntry) error {
	start := time.Now()
	err := q.wal.appendAll(entries)
	mWALFsyncSeconds.Since(start)
	if err != nil {
		return err
	}
	q.lsn += int64(len(entries))
	return nil
}

// LSN returns the WAL's current log sequence number: the count of
// entries durably appended or replayed, 0 for an in-memory queue. The
// durability subsystem captures it immediately before snapshotting the
// store, so a later recovery replays exactly the acknowledgements the
// image does not cover.
func (q *Queue) LSN() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lsn
}

// Nack returns a leased message to the front of the queue for immediate
// redelivery.
func (q *Queue) Nack(id int64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.inflight[id]; !ok {
		return fmt.Errorf("mq: message %d not in flight", id)
	}
	delete(q.inflight, id)
	q.pending = append([]int64{id}, q.pending...)
	mNacked.Inc()
	return nil
}

// Tag annotates a leased or pending message with its classified type.
func (q *Queue) Tag(id int64, tag string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	m, ok := q.messages[id]
	if !ok {
		return fmt.Errorf("mq: message %d not found", id)
	}
	m.Tag = tag
	return nil
}

// Len returns the number of undelivered (pending) messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reclaimExpired(q.clock())
	n := 0
	for _, id := range q.pending {
		if _, ok := q.messages[id]; ok {
			n++
		}
	}
	return n
}

// InFlight returns the number of leased, unacknowledged messages.
func (q *Queue) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.inflight)
}

// Stats is a point-in-time queue-health snapshot.
type Stats struct {
	// Pending is the number of undelivered messages.
	Pending int
	// InFlight is the number of leased, unacknowledged messages.
	InFlight int
	// Acked counts messages successfully acknowledged over the queue's
	// lifetime (group commits included).
	Acked int
	// DeadLettered counts messages that exhausted their delivery
	// attempts.
	DeadLettered int
	// WALAppendErrors counts write-ahead-log appends that failed on the
	// dead-letter path, where no caller can receive the error: non-zero
	// means the in-memory dead-letter list and the log have diverged.
	WALAppendErrors int
}

// Stats returns a consistent queue-health snapshot under one lock
// acquisition — what drains and benchmarks report. Expired leases are
// reclaimed first, so Pending/InFlight reflect the queue as a consumer
// would next see it.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reclaimExpired(q.clock())
	pending := 0
	for _, id := range q.pending {
		if _, ok := q.messages[id]; ok {
			pending++
		}
	}
	return Stats{
		Pending:         pending,
		InFlight:        len(q.inflight),
		Acked:           q.acked,
		DeadLettered:    len(q.dead),
		WALAppendErrors: q.walErrs,
	}
}

// DeadLetters returns messages that exhausted their delivery attempts.
func (q *Queue) DeadLetters() []Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Message, len(q.dead))
	for i, m := range q.dead {
		out[i] = *m
	}
	return out
}
