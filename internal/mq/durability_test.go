package mq

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTornWriteTruncatedBeforeAppend: a torn tail must be cut away when
// the log reopens, not just skipped — otherwise the next append fuses
// onto the partial line and the fused garbage ends replay early on the
// boot after that, silently dropping every later entry.
func TestTornWriteTruncatedBeforeAppend(t *testing.T) {
	tears := []string{
		`{"op":"enq","msg":{"id":2,"bo`, // cut mid-payload
		`{"op":"ack","id":1}`,           // cut between payload and newline
	}
	for _, tear := range tears {
		path := filepath.Join(t.TempDir(), "torn.wal")
		q, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q.Enqueue("first", "a"); err != nil {
			t.Fatal(err)
		}
		q.Close()
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(tear); err != nil {
			t.Fatal(err)
		}
		f.Close()

		// First life after the crash: the torn entry is gone, and new
		// traffic appends cleanly after the valid prefix.
		q2, err := Open(path)
		if err != nil {
			t.Fatalf("torn wal rejected: %v", err)
		}
		if _, err := q2.Enqueue("second", "b"); err != nil {
			t.Fatal(err)
		}
		q2.Close()

		// Second life: everything written after the tear must replay.
		q3, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := q3.Len(); got != 2 {
			t.Fatalf("tear %q: replayed Len = %d, want both messages", tear, got)
		}
		m1, _ := q3.Dequeue()
		m2, _ := q3.Dequeue()
		if m1.Body != "first" || m2.Body != "second" {
			t.Fatalf("tear %q: replayed %q, %q", tear, m1.Body, m2.Body)
		}
		q3.Close()
	}
}

// TestDeadLetterSurvivesWALReplay: dead letters are logged as their own
// WAL op, so the dead-letter list — body included — survives a restart
// instead of silently counting as acknowledged.
func TestDeadLetterSurvivesWALReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	q, err := Open(path, WithMaxAttempts(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("poison message", "mallory"); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("good message", "alice"); err != nil {
		t.Fatal(err)
	}
	m, ok := q.Dequeue()
	if !ok {
		t.Fatal("no message")
	}
	if err := q.Nack(m.ID); err != nil {
		t.Fatal(err)
	}
	// The redelivery attempt exceeds the single allowed one: the next
	// Dequeue dead-letters it and hands out the good message instead.
	m2, ok := q.Dequeue()
	if !ok || m2.Body != "good message" {
		t.Fatalf("dequeued %+v, want the good message", m2)
	}
	if got := q.Stats(); got.DeadLettered != 1 || got.WALAppendErrors != 0 {
		t.Fatalf("stats = %+v, want 1 dead-lettered, no WAL errors", got)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, err := Open(path, WithMaxAttempts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if got := q2.Stats(); got.DeadLettered != 1 {
		t.Fatalf("after replay: %+v, want DeadLettered 1", got)
	}
	dead := q2.DeadLetters()
	if len(dead) != 1 || dead[0].Body != "poison message" || dead[0].Source != "mallory" {
		t.Fatalf("dead letters after replay = %+v", dead)
	}
	// The good message is back in flight territory: still pending (its
	// lease from before the restart does not survive).
	if got := q2.Stats(); got.Pending != 1 {
		t.Fatalf("after replay: %+v, want the good message pending", got)
	}
	// A dead-lettered message must never be redelivered.
	m3, ok := q2.Dequeue()
	if !ok || m3.Body != "good message" {
		t.Fatalf("dequeued %+v after replay, want the good message", m3)
	}
	if _, ok := q2.Dequeue(); ok {
		t.Fatal("dead-lettered message was redelivered after replay")
	}
}

// TestLSNAdvancesPerEntry: the log sequence number counts durable
// entries — single appends, group commits — and replay resumes it.
func TestLSNAdvancesPerEntry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.LSN(); got != 0 {
		t.Fatalf("fresh LSN = %d", got)
	}
	for i := 0; i < 3; i++ {
		if _, err := q.Enqueue("m", "src"); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.LSN(); got != 3 {
		t.Fatalf("LSN after 3 enqueues = %d", got)
	}
	m1, _ := q.Dequeue()
	m2, _ := q.Dequeue()
	if _, err := q.AckBatch([]int64{m1.ID, m2.ID}); err != nil {
		t.Fatal(err)
	}
	if got := q.LSN(); got != 5 {
		t.Fatalf("LSN after batch ack = %d", got)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if got := q2.LSN(); got != 5 {
		t.Fatalf("LSN after replay = %d, want 5", got)
	}
	// An in-memory queue has no log to sequence.
	if got := New().LSN(); got != 0 {
		t.Fatalf("in-memory LSN = %d", got)
	}
}

// TestReplayAckedAfterCheckpointLSN: with a checkpoint cutoff, replay
// keeps pre-cutoff acknowledgements acknowledged and re-enqueues the
// rest for re-integration.
func TestReplayAckedAfterCheckpointLSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, body := range []string{"first", "second", "third"} {
		if _, err := q.Enqueue(body, "src"); err != nil {
			t.Fatal(err)
		}
	}
	m1, _ := q.Dequeue()
	if err := q.Ack(m1.ID); err != nil {
		t.Fatal(err)
	}
	// A checkpoint happens here: its image covers the first ack.
	cut := q.LSN()
	m2, _ := q.Dequeue()
	m3, _ := q.Dequeue()
	if _, err := q.AckBatch([]int64{m2.ID, m3.ID}); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash recovery against the checkpoint: second and third were
	// acknowledged after its LSN, so they come back as pending, in
	// receive order; first stays acknowledged.
	q2, err := Open(path, WithReplayAckedAfter(cut))
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if got := q2.Stats(); got.Pending != 2 || got.Acked != 1 {
		t.Fatalf("stats = %+v, want 2 pending / 1 acked", got)
	}
	r1, _ := q2.Dequeue()
	r2, _ := q2.Dequeue()
	if r1.Body != "second" || r2.Body != "third" {
		t.Fatalf("replayed %q, %q; want second, third", r1.Body, r2.Body)
	}

	// Without the option (no durability subsystem) acknowledged stays
	// acknowledged — the previous behavior.
	q3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q3.Close()
	if got := q3.Stats(); got.Pending != 0 || got.Acked != 3 {
		t.Fatalf("plain replay stats = %+v, want 0 pending / 3 acked", got)
	}
}

// TestReplayAckedAfterSkipsDeadLetters: a cutoff of zero replays every
// acknowledged message, but dead letters are terminal — they rebuild
// into the dead-letter list, never into pending.
func TestReplayAckedAfterSkipsDeadLetters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	q, err := Open(path, WithMaxAttempts(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("poison", "mallory"); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("fine", "alice"); err != nil {
		t.Fatal(err)
	}
	m, _ := q.Dequeue()
	if err := q.Nack(m.ID); err != nil {
		t.Fatal(err)
	}
	m2, _ := q.Dequeue() // dead-letters the poison, delivers the fine one
	if err := q.Ack(m2.ID); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, err := Open(path, WithMaxAttempts(1), WithReplayAckedAfter(0))
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	st := q2.Stats()
	if st.DeadLettered != 1 {
		t.Fatalf("stats = %+v, want the poison dead-lettered", st)
	}
	if st.Pending != 1 {
		t.Fatalf("stats = %+v, want only the acked message re-enqueued", st)
	}
	r, _ := q2.Dequeue()
	if r.Body != "fine" {
		t.Fatalf("replayed %q, want the acknowledged message", r.Body)
	}
}
