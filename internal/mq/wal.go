package mq

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// The write-ahead log is a newline-delimited JSON file of enqueue and ack
// entries. Replay reconstructs the set of unacknowledged messages. Dead-
// lettered messages are logged as acks (they will not be redelivered).

type walOp string

const (
	opEnqueue walOp = "enq"
	opAck     walOp = "ack"
)

type walEntry struct {
	Op  walOp   `json:"op"`
	ID  int64   `json:"id,omitempty"`
	Msg Message `json:"msg,omitempty"`
}

type wal struct {
	f *os.File
}

// openWAL opens (creating if needed) the log and returns its replayed
// entries. A trailing partial line (torn write) is tolerated and ignored.
func openWAL(path string) (*wal, []walEntry, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("mq: open wal: %w", err)
	}
	var entries []walEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e walEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// Torn final write after a crash: stop replaying here.
			break
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("mq: read wal: %w", err)
	}
	// Position at end for appends.
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("mq: seek wal: %w", err)
	}
	return &wal{f: f}, entries, nil
}

func (w *wal) append(e walEntry) error {
	return w.appendAll([]walEntry{e})
}

// appendAll writes a run of entries as one buffer and one fsync — the
// group commit that lets batched acknowledgements amortize durability
// cost across a whole batch instead of paying a sync per message.
func (w *wal) appendAll(entries []walEntry) error {
	var buf []byte
	for _, e := range entries {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	if len(buf) == 0 {
		return nil
	}
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *wal) close() error {
	return w.f.Close()
}
