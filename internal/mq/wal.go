package mq

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The write-ahead log is a newline-delimited JSON file of enqueue, ack
// and dead-letter entries. Replay reconstructs the set of
// unacknowledged messages plus the dead-letter list. Each entry has an
// implicit log sequence number (1-based position in the file); the
// durability subsystem's checkpoints record the LSN current when their
// snapshot was taken, so recovery can re-integrate exactly the
// messages acknowledged after the image.
//
// Logs written before dead letters had their own op record them as
// acks; replaying such a log loses the dead-letter list, and under
// WithReplayAckedAfter those entries replay like any other ack (the
// poison message gets a fresh attempt cycle) — the compatibility cost
// of pointing a durable boot at the old format.

type walOp string

const (
	opEnqueue walOp = "enq"
	opAck     walOp = "ack"
	// opDead marks a message that exhausted its delivery attempts: like
	// an ack it is never redelivered, but replay rebuilds it into the
	// dead-letter list instead of dropping it, so Stats().DeadLettered
	// and DeadLetters() survive a restart.
	opDead walOp = "dead"
)

type walEntry struct {
	Op  walOp   `json:"op"`
	ID  int64   `json:"id,omitempty"`
	Msg Message `json:"msg,omitempty"`
}

type wal struct {
	f *os.File
}

// scanWAL replays the log bytes arriving through r (size bytes long)
// and returns the parsed entries plus validEnd, the byte offset just
// past the last complete, parseable, newline-terminated entry — where
// appends resume. Everything at and beyond validEnd is a torn trailing
// write the caller should truncate away, not just skip: appending
// after a tolerated partial line would fuse the next entry into it,
// and the fused unparseable line would end replay early on the
// following boot, silently dropping everything after it. An entry
// whose group commit never completed also never reported success to
// its producer, so cutting it loses nothing acknowledged.
//
// The returned error reports only read failures from r; torn tails are
// not errors. The function is pure with respect to its input bytes,
// which is what lets FuzzWALScan hammer it with arbitrary corruption.
func scanWAL(r io.Reader, size int64) ([]walEntry, int64, error) {
	var entries []walEntry
	var validEnd int64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := int64(len(line)) + 1
		if len(line) == 0 {
			validEnd += lineLen
			continue
		}
		var e walEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// Torn final write after a crash: stop replaying here.
			break
		}
		if validEnd+lineLen > size {
			// Parseable but missing its newline: the write was cut
			// between the payload and the terminator — still torn.
			break
		}
		entries = append(entries, e)
		validEnd += lineLen
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return entries, validEnd, nil
}

// openWAL opens (creating if needed) the log, replays it through
// scanWAL, and truncates any torn tail so appends resume at the end of
// the valid prefix.
func openWAL(path string) (*wal, []walEntry, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("mq: open wal: %w", err)
	}
	fail := func(op string, err error) (*wal, []walEntry, error) {
		f.Close()
		return nil, nil, fmt.Errorf("mq: %s wal: %w", op, err)
	}
	fi, err := f.Stat()
	if err != nil {
		return fail("stat", err)
	}
	size := fi.Size()
	entries, validEnd, err := scanWAL(f, size)
	if err != nil {
		return fail("read", err)
	}
	if validEnd < size {
		if err := f.Truncate(validEnd); err != nil {
			return fail("truncate", err)
		}
		if err := f.Sync(); err != nil {
			return fail("sync", err)
		}
	}
	// Position at the end of the valid prefix for appends.
	if _, err := f.Seek(validEnd, 0); err != nil {
		return fail("seek", err)
	}
	return &wal{f: f}, entries, nil
}

func (w *wal) append(e walEntry) error {
	return w.appendAll([]walEntry{e})
}

// appendAll writes a run of entries as one buffer and one fsync — the
// group commit that lets batched acknowledgements amortize durability
// cost across a whole batch instead of paying a sync per message.
func (w *wal) appendAll(entries []walEntry) error {
	var buf []byte
	for _, e := range entries {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	if len(buf) == 0 {
		return nil
	}
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *wal) close() error {
	return w.f.Close()
}
