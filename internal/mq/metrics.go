package mq

import "repro/internal/obs"

// Queue-level metric families on the process-wide registry. Counters
// record lifecycle transitions at their mutation points; the histograms
// time the durability-critical paths (enqueue and acknowledgement both
// pay a WAL fsync when the queue is durable, and the fsync histogram
// isolates that cost from the bookkeeping around it). Pending/in-flight
// depth is exported as GaugeFuncs bound by core.New, which samples the
// live queue at scrape time instead of shadowing it in a gauge.
var (
	mEnqueued = obs.Default().Counter("neogeo_mq_enqueued_total",
		"Messages accepted into the queue.").With()
	mAcked = obs.Default().Counter("neogeo_mq_acked_total",
		"Messages acknowledged (single and batched).").With()
	mNacked = obs.Default().Counter("neogeo_mq_nacked_total",
		"Messages negatively acknowledged back to the front of the queue.").With()
	mDeadLettered = obs.Default().Counter("neogeo_mq_dead_lettered_total",
		"Messages moved to the dead-letter list after exhausting delivery attempts.").With()
	mWALAppendErrors = obs.Default().Counter("neogeo_mq_wal_append_errors_total",
		"WAL appends that failed (including the unreportable dead-letter path).").With()
	mEnqueueSeconds = obs.Default().Histogram("neogeo_mq_enqueue_seconds",
		"Enqueue latency including the WAL append when durable.", nil).With()
	mAckSeconds = obs.Default().Histogram("neogeo_mq_ack_seconds",
		"Acknowledgement latency including the WAL group commit when durable.", nil).With()
	mWALFsyncSeconds = obs.Default().Histogram("neogeo_mq_wal_fsync_seconds",
		"WAL append+fsync latency per group commit.", nil).With()
)
