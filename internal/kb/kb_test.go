package kb

import (
	"testing"
)

func TestDefaultDomains(t *testing.T) {
	k := New()
	ds := k.Domains()
	if len(ds) != 3 {
		t.Fatalf("domains = %d", len(ds))
	}
	names := []string{ds[0].Name, ds[1].Name, ds[2].Name}
	want := []string{"farming", "tourism", "traffic"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("domain order = %v", names)
			break
		}
	}
	tour, ok := k.Domain("tourism")
	if !ok {
		t.Fatal("tourism missing")
	}
	if tour.Collection != "Hotels" || tour.RecordTag != "Hotel" || tour.KeyField != "Hotel_Name" {
		t.Errorf("tourism = %+v", tour)
	}
	// Every domain's key field exists among its fields.
	for _, d := range ds {
		found := false
		for _, f := range d.Fields {
			if f.Name == d.KeyField {
				found = true
			}
		}
		if !found {
			t.Errorf("domain %s key field %q missing", d.Name, d.KeyField)
		}
	}
	if _, ok := k.Domain("astronomy"); ok {
		t.Error("unknown domain found")
	}
}

func TestRegisterDomain(t *testing.T) {
	k := New()
	err := k.RegisterDomain(Domain{
		Name: "health", Collection: "Clinics", RecordTag: "Clinic",
		KeyField: "Clinic_Name",
		Fields: []FieldSpec{
			{Name: "Clinic_Name", Kind: FieldText, Required: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := k.Domain("health"); !ok {
		t.Error("registered domain missing")
	}
	// Validation failures.
	bad := []Domain{
		{},
		{Name: "x", Collection: "C", RecordTag: "R"},
		{Name: "x", Collection: "C", RecordTag: "R", KeyField: "nope",
			Fields: []FieldSpec{{Name: "A"}}},
	}
	for i, d := range bad {
		if err := k.RegisterDomain(d); err == nil {
			t.Errorf("bad domain %d accepted", i)
		}
	}
}

func TestRuleCF(t *testing.T) {
	k := New()
	if cf := k.RuleCF("gazetteer-exact"); cf != 0.8 {
		t.Errorf("gazetteer-exact = %v", cf)
	}
	if cf := k.RuleCF("unknown-rule"); cf != 0 {
		t.Errorf("unknown rule = %v", cf)
	}
	if err := k.SetRuleCF("custom", 0.4); err != nil {
		t.Fatal(err)
	}
	if cf := k.RuleCF("custom"); cf != 0.4 {
		t.Errorf("custom = %v", cf)
	}
	if err := k.SetRuleCF("bad", 1.5); err == nil {
		t.Error("invalid CF accepted")
	}
}

func TestSeedsAndClassifier(t *testing.T) {
	k := New()
	if len(k.Seeds()) < 30 {
		t.Fatalf("only %d seeds", len(k.Seeds()))
	}
	if err := k.AddSeed(LabelRequest, "whats the best kebab near here?"); err != nil {
		t.Fatal(err)
	}
	if err := k.AddSeed("weird", "x"); err == nil {
		t.Error("bad label accepted")
	}
	if err := k.AddSeed(LabelRequest, ""); err == nil {
		t.Error("empty seed accepted")
	}
	nb, err := k.TrainTypeClassifier()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's two scenario messages classify correctly.
	cases := []struct {
		msg, want string
	}{
		{"Good morning Berlin. Very impressed by the customer service at #movenpick hotel in berlin.", LabelInformative},
		{"Can anyone recommend a good, but not ridiculously expensive hotel right in the middle of Berlin?", LabelRequest},
		{"huge jam on the ring road avoid it", LabelInformative},
		{"is the bridge open this morning?", LabelRequest},
	}
	for _, c := range cases {
		got, p := nb.PredictLabel(TypeFeatures(c.msg))
		if got != c.want {
			t.Errorf("classify(%q) = %s (p=%.2f), want %s", c.msg, got, p, c.want)
		}
	}
}

func TestTypeFeatures(t *testing.T) {
	feats := TypeFeatures("Can anyone recommend a hotel?")
	hasQ, hasStart := false, false
	for _, f := range feats {
		if f == "__question_mark__" {
			hasQ = true
		}
		if f == "__interrogative_start__" {
			hasStart = true
		}
	}
	if !hasQ || !hasStart {
		t.Errorf("features = %v", feats)
	}
}

func TestTrustAndDecay(t *testing.T) {
	k := New()
	if k.Trust() == nil {
		t.Fatal("nil trust model")
	}
	r := k.Trust().Reliability("anyone")
	if r <= 0 || r >= 1 {
		t.Errorf("prior reliability = %v", r)
	}
	d := k.DecayPerDay()
	if d <= 0.9 || d > 1 {
		t.Errorf("decay = %v", d)
	}
}
