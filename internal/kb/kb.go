// Package kb is the paper's Knowledge Base: "set of rules needed for the
// extraction process … generated from a set of training texts", plus the
// probabilistic policies used when integrating new information with the
// database. It stores domain definitions (which ontology concepts anchor a
// template, which fields it carries), labelled seed texts for the message-
// type classifier, and per-field conflict-resolution policies.
package kb

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/classify"
	"repro/internal/text"
	"repro/internal/uncertain"
)

// FieldKind describes how a template field is represented and integrated.
type FieldKind int

// Field kinds.
const (
	// FieldText is a plain extracted string (hotel name, road name).
	FieldText FieldKind = iota
	// FieldDist is a probability distribution over values (country).
	FieldDist
	// FieldAttitude is the Positive/Negative opinion distribution.
	FieldAttitude
	// FieldLocation is a resolved geographic reference.
	FieldLocation
	// FieldNumber is a numeric observation (price, delay minutes).
	FieldNumber
)

// FieldSpec declares one template field.
type FieldSpec struct {
	Name     string
	Kind     FieldKind
	Required bool
	// Policy resolves conflicts when integrating a new observation with a
	// stored one.
	Policy ConflictPolicy
}

// ConflictPolicy selects the integration behaviour for a field.
type ConflictPolicy int

// Conflict policies.
const (
	// PolicyMergeDist pools observations into a distribution (attitudes,
	// countries): contradiction is represented, not resolved.
	PolicyMergeDist ConflictPolicy = iota
	// PolicyTrustWeighted keeps the alternative whose accumulated trust-
	// weighted certainty is highest (prices, statuses).
	PolicyTrustWeighted
	// PolicyNewest keeps the most recent observation (traffic conditions:
	// "the validation of the information over time").
	PolicyNewest
)

// Domain declares one application domain's extraction template.
type Domain struct {
	// Name is the domain identifier ("tourism", "traffic", "farming").
	Name string
	// Collection is the XMLDB collection receiving this domain's records.
	Collection string
	// RecordTag is the pxml root tag ("Hotel", "RoadReport", "FarmReport").
	RecordTag string
	// AnchorConcepts are the ontology concepts whose mention marks a
	// message as belonging to this domain ("hotel", "traffic", "crop").
	AnchorConcepts []string
	// Fields are the template slots.
	Fields []FieldSpec
	// KeyField names the field identifying the real-world entity for
	// duplicate detection (e.g. "Hotel_Name").
	KeyField string
}

// KB is the knowledge base. Reads are safe for concurrent use.
type KB struct {
	mu       sync.RWMutex
	domains  map[string]Domain
	seeds    []Seed
	trust    *uncertain.TrustModel
	ruleCF   map[string]uncertain.CF // extraction-rule reliabilities
	decayday float64                 // per-day certainty decay factor
}

// Seed is one labelled training text for the message-type classifier.
type Seed struct {
	Label string // "informative" or "request"
	Text  string
}

// Message-type labels.
const (
	LabelInformative = "informative"
	LabelRequest     = "request"
)

// New returns a knowledge base preloaded with the three validation-
// scenario domains and the default training seeds.
func New() *KB {
	trust, err := uncertain.NewTrustModel(0.6, 4)
	if err != nil {
		panic(err) // static parameters; cannot fail
	}
	k := &KB{
		domains:  make(map[string]Domain),
		trust:    trust,
		ruleCF:   make(map[string]uncertain.CF),
		decayday: 0.995,
	}
	k.seedDomains()
	k.seeds = defaultSeeds()
	k.ruleCF["facility-cue"] = 0.7
	k.ruleCF["gazetteer-exact"] = 0.8
	k.ruleCF["gazetteer-fuzzy"] = 0.5
	k.ruleCF["relation-phrase"] = 0.6
	return k
}

func (k *KB) seedDomains() {
	k.domains["tourism"] = Domain{
		Name:           "tourism",
		Collection:     "Hotels",
		RecordTag:      "Hotel",
		AnchorConcepts: []string{"hotel", "hostel", "restaurant", "bar"},
		KeyField:       "Hotel_Name",
		Fields: []FieldSpec{
			{Name: "Hotel_Name", Kind: FieldText, Required: true, Policy: PolicyTrustWeighted},
			{Name: "Location", Kind: FieldLocation, Required: false, Policy: PolicyTrustWeighted},
			{Name: "City", Kind: FieldText, Required: false, Policy: PolicyTrustWeighted},
			{Name: "Country", Kind: FieldDist, Required: false, Policy: PolicyMergeDist},
			{Name: "User_Attitude", Kind: FieldAttitude, Required: false, Policy: PolicyMergeDist},
			{Name: "Price", Kind: FieldNumber, Required: false, Policy: PolicyTrustWeighted},
		},
	}
	k.domains["traffic"] = Domain{
		Name:           "traffic",
		Collection:     "RoadReports",
		RecordTag:      "RoadReport",
		AnchorConcepts: []string{"traffic", "road", "station"},
		KeyField:       "Place",
		Fields: []FieldSpec{
			{Name: "Place", Kind: FieldText, Required: true, Policy: PolicyTrustWeighted},
			{Name: "Location", Kind: FieldLocation, Required: false, Policy: PolicyTrustWeighted},
			{Name: "Condition", Kind: FieldDist, Required: true, Policy: PolicyNewest},
			{Name: "User_Attitude", Kind: FieldAttitude, Required: false, Policy: PolicyMergeDist},
		},
	}
	k.domains["farming"] = Domain{
		Name:           "farming",
		Collection:     "FarmReports",
		RecordTag:      "FarmReport",
		AnchorConcepts: []string{"crop", "pest", "market", "weather"},
		KeyField:       "Region",
		Fields: []FieldSpec{
			{Name: "Region", Kind: FieldText, Required: true, Policy: PolicyTrustWeighted},
			{Name: "Location", Kind: FieldLocation, Required: false, Policy: PolicyTrustWeighted},
			{Name: "Topic", Kind: FieldDist, Required: true, Policy: PolicyMergeDist},
			{Name: "Observation", Kind: FieldText, Required: false, Policy: PolicyNewest},
			{Name: "User_Attitude", Kind: FieldAttitude, Required: false, Policy: PolicyMergeDist},
		},
	}
}

// Domain returns a registered domain.
func (k *KB) Domain(name string) (Domain, bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	d, ok := k.domains[name]
	return d, ok
}

// Domains returns all domains sorted by name.
func (k *KB) Domains() []Domain {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make([]Domain, 0, len(k.domains))
	for _, d := range k.domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RegisterDomain adds or replaces a domain definition — the "portable,
// domain-independent" knob the paper's introduction promises: a new
// scenario is a new Domain value, not new code.
func (k *KB) RegisterDomain(d Domain) error {
	if d.Name == "" || d.Collection == "" || d.RecordTag == "" {
		return fmt.Errorf("kb: domain needs name, collection and record tag")
	}
	if len(d.Fields) == 0 {
		return fmt.Errorf("kb: domain %q has no fields", d.Name)
	}
	if d.KeyField != "" {
		found := false
		for _, f := range d.Fields {
			if f.Name == d.KeyField {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("kb: key field %q not among fields", d.KeyField)
		}
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.domains[d.Name] = d
	return nil
}

// RuleCF returns the reliability of a named extraction rule (0 when
// unknown).
func (k *KB) RuleCF(rule string) uncertain.CF {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.ruleCF[rule]
}

// SetRuleCF updates a rule reliability.
func (k *KB) SetRuleCF(rule string, cf uncertain.CF) error {
	if err := cf.Validate(); err != nil {
		return err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.ruleCF[rule] = cf
	return nil
}

// Trust exposes the source-trust model shared by extraction and
// integration.
func (k *KB) Trust() *uncertain.TrustModel {
	return k.trust
}

// DecayPerDay returns the per-day certainty decay factor for time-
// sensitive facts.
func (k *KB) DecayPerDay() float64 {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.decayday
}

// AddSeed appends a labelled training text.
func (k *KB) AddSeed(label, txt string) error {
	if label != LabelInformative && label != LabelRequest {
		return fmt.Errorf("kb: unknown seed label %q", label)
	}
	if txt == "" {
		return fmt.Errorf("kb: empty seed text")
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.seeds = append(k.seeds, Seed{Label: label, Text: txt})
	return nil
}

// Seeds returns the training corpus.
func (k *KB) Seeds() []Seed {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return append([]Seed(nil), k.seeds...)
}

// TrainTypeClassifier builds the informative-vs-request Naive Bayes
// classifier from the seed corpus ("These rules are generated from a set
// of training texts").
func (k *KB) TrainTypeClassifier() (*classify.NaiveBayes, error) {
	nb := classify.NewNaiveBayes()
	for _, s := range k.Seeds() {
		feats := typeFeatures(s.Text)
		if err := nb.Train(s.Label, feats); err != nil {
			return nil, err
		}
	}
	return nb, nil
}

// TypeFeatures extracts the classifier features for a message: normalised
// words plus surface cues (question mark, interrogative lead word).
func TypeFeatures(msg string) []string {
	return typeFeatures(msg)
}

func typeFeatures(msg string) []string {
	norm := text.Normalize(msg)
	toks := text.Tokenize(norm)
	feats := text.Words(toks)
	for _, tok := range toks {
		if tok.Kind == text.KindPunct && tok.Text[0] == '?' {
			feats = append(feats, "__question_mark__")
		}
	}
	if len(feats) > 0 {
		switch feats[0] {
		case "can", "could", "does", "is", "are", "what", "where", "which",
			"who", "how", "when", "any", "anyone", "recommend", "please", "pls":
			feats = append(feats, "__interrogative_start__")
		}
	}
	return feats
}

// defaultSeeds is the built-in training corpus: informal informative
// messages and requests across the three validation domains.
func defaultSeeds() []Seed {
	inf := []string{
		"berlin has some nice hotels i just loved the Axel Hotel in Berlin",
		"very impressed by the customer service at #movenpick hotel in berlin",
		"in berlin hotel room nice enough weather grim however",
		"the grand plaza was dirty and overpriced, avoid",
		"stayed at hotel lola great breakfast cheap rooms",
		"essex house hotel and suites from $154 usd surrounded by clubs",
		"huge traffic jam on the ring road near the stadium",
		"accident at the main bridge road blocked both ways",
		"road to the market is flooded take the northern detour",
		"traffic moving slowly past the checkpoint this morning",
		"locust swarm moving south of the river valley",
		"maize prices up at the central market today",
		"blight spotted on cassava fields near the lake",
		"good rains this week sowing beans tomorrow",
		"sold my coffee harvest at the cooperative for a fair price",
		"the station cafe does a lovely breakfast",
		"clean rooms and friendly staff at the riverside inn",
		"gr8 hotel pls visit the rooftop bar",
		"bedbugs in room 12 of the harbour hostel, terrible",
		"new year fireworks from the castle hill amazing view",
		// Status reports with temporal expressions — the crisis-reporting
		// register ("clear now", "N hours ago") reads like a question's
		// "near X" phrasing without these.
		"road near the bridge clear now water gone",
		"the jam cleared an hour ago traffic flowing again",
		"flooding reported 4 hours ago on the valley road",
		"accident near the market cleared this afternoon",
	}
	req := []string{
		"can anyone recommend a good but not ridiculously expensive hotel right in the middle of berlin?",
		"what are the good cheap hotels near paris?",
		"any good restaurant near the station?",
		"where can i find a clean hostel in cairo?",
		"is the road to the airport open?",
		"what is the best way to the market from the bridge?",
		"any traffic on the highway this morning?",
		"how are maize prices at the central market?",
		"when should i sow beans this season?",
		"anyone know a buyer for cassava near the lake?",
		"which hotel has the best breakfast in town?",
		"pls suggest a cheap place to stay 2nite",
		"is there a pharmacy near the main square?",
		"how long is the detour around the flooded road?",
		"r there any gd hotels nr the beach?",
		"could you recommend somewhere quiet to stay?",
		"what r the room prices at essex house?",
		"any locust sightings near the valley?",
		"is the north road safe after the storm?",
		"where do i catch the bus to the old town?",
	}
	out := make([]Seed, 0, len(inf)+len(req))
	for _, s := range inf {
		out = append(out, Seed{Label: LabelInformative, Text: s})
	}
	for _, s := range req {
		out = append(out, Seed{Label: LabelRequest, Text: s})
	}
	return out
}
