// Package obs is the observability layer of the pipeline: a
// zero-dependency metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms with labeled families, exposed in
// Prometheus text format), per-message trace IDs carried through
// context.Context and the message-queue envelope, and slog helpers for
// the structured-logging migration. Every stage of the system — queue,
// pipeline, Ask path, feedback, durability, HTTP — reports into the
// process-wide Default registry, which cmd/neogeod serves at
// GET /metrics; perf work on the paper's extract → disambiguate →
// integrate → feedback loop is measured through this package.
//
// The registry is deliberately small rather than a Prometheus client
// re-implementation: families are created once (idempotent per name),
// series are cheap atomics on the hot path, and a disabled registry
// (SetEnabled(false)) turns every observation into a single atomic
// load, which is what the metrics-on/metrics-off drain benchmark pins.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets in seconds, spanning the
// microsecond-scale store operations up to multi-second stalls.
var DefBuckets = []float64{
	0.000005, 0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExpBuckets returns n buckets starting at start, each factor times the
// previous — for sizes (bytes, batch lengths) rather than latencies.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// kind discriminates family types in the exposition output.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families and serves them in Prometheus text
// format. All methods are safe for concurrent use.
type Registry struct {
	// disabled short-circuits every observation when set; it is the only
	// state touched on the hot path.
	disabled atomic.Bool

	mu         sync.RWMutex
	families   map[string]*family
	gaugeFuncs map[string]*gaugeFunc
}

// family is one named metric family with a fixed label schema.
type family struct {
	reg     *Registry
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]any // label-value key -> *Counter/*Gauge/*Histogram
}

type gaugeFunc struct {
	help string
	fn   func() float64
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		families:   make(map[string]*family),
		gaugeFuncs: make(map[string]*gaugeFunc),
	}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry every subsystem's package-level
// families register on; cmd/neogeod serves it at GET /metrics.
func Default() *Registry { return defaultRegistry }

// SetEnabled turns observation on or off. Disabled, every Add/Observe
// returns after one atomic load — the knob the instrumentation-overhead
// benchmark compares against. Exposition still works while disabled.
func (r *Registry) SetEnabled(on bool) { r.disabled.Store(!on) }

// Enabled reports whether observations are being recorded.
func (r *Registry) Enabled() bool { return !r.disabled.Load() }

// family returns the named family, creating it if needed. Re-registering
// an existing name returns the existing family (package-level vars in
// independent packages may race at init); a kind or label-schema
// mismatch panics — that is a programming error, not runtime input.
func (r *Registry) family(name, help string, k kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: conflicting registration of %s", name))
		}
		return f
	}
	f := &family{
		reg: r, name: name, help: help, kind: k,
		labels: append([]string(nil), labels...), buckets: buckets,
		series: make(map[string]any),
	}
	r.families[name] = f
	return f
}

// CounterFamily is a labeled family of counters.
type CounterFamily struct{ f *family }

// Counter registers (or returns) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterFamily {
	return &CounterFamily{r.family(name, help, kindCounter, nil, labels)}
}

// With returns the series for the given label values, creating it at
// zero on first use.
func (cf *CounterFamily) With(values ...string) *Counter {
	v := cf.f.seriesOf(values, func() any { return &Counter{reg: cf.f.reg} })
	return v.(*Counter)
}

// GaugeFamily is a labeled family of gauges.
type GaugeFamily struct{ f *family }

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeFamily {
	return &GaugeFamily{r.family(name, help, kindGauge, nil, labels)}
}

// With returns the series for the given label values.
func (gf *GaugeFamily) With(values ...string) *Gauge {
	v := gf.f.seriesOf(values, func() any { return &Gauge{reg: gf.f.reg} })
	return v.(*Gauge)
}

// HistogramFamily is a labeled family of fixed-bucket histograms.
type HistogramFamily struct{ f *family }

// Histogram registers (or returns) a histogram family with the given
// upper-bound buckets (nil: DefBuckets). Buckets are sorted ascending;
// a +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramFamily {
	if buckets == nil {
		buckets = DefBuckets
	}
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	return &HistogramFamily{r.family(name, help, kindHistogram, b, labels)}
}

// With returns the series for the given label values.
func (hf *HistogramFamily) With(values ...string) *Histogram {
	f := hf.f
	v := f.seriesOf(values, func() any {
		return &Histogram{
			reg: f.reg, buckets: f.buckets,
			counts:    make([]atomic.Uint64, len(f.buckets)+1),
			exemplars: make([]atomic.Pointer[exemplar], len(f.buckets)+1),
		}
	})
	return v.(*Histogram)
}

// GaugeFunc registers a gauge sampled by fn at exposition time —
// queue-depth style metrics whose truth lives in the instrumented
// component. Re-registering a name replaces the function (the newest
// constructed system owns the process-wide series).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = &gaugeFunc{help: help, fn: fn}
}

// FindHistogram returns the histogram series registered under name with
// exactly the given label values, or nil when either the family or the
// series does not exist — the facade's latency summaries use it so they
// never force series into being.
func (r *Registry) FindHistogram(name string, values ...string) *Histogram {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok || f.kind != kindHistogram {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[seriesKey(values)]; ok {
		return s.(*Histogram)
	}
	return nil
}

// seriesKey joins label values with an unprintable separator.
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

// seriesOf returns the series for the label values, creating it with
// mk on first use. The label-value count must match the family schema.
func (f *family) seriesOf(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing series.
type Counter struct {
	reg  *Registry
	bits atomic.Uint64
}

// Add adds v (v < 0 is ignored — counters only go up).
func (c *Counter) Add(v float64) {
	if c.reg.disabled.Load() || v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a series that can go up and down.
type Gauge struct {
	reg  *Registry
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g.reg.disabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) {
	if g.reg.disabled.Load() {
		return
	}
	addFloat(&g.bits, v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat CAS-adds v onto a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Histogram is a fixed-bucket distribution series.
type Histogram struct {
	reg       *Registry
	buckets   []float64       // sorted upper bounds; +Inf implicit
	counts    []atomic.Uint64 // len(buckets)+1, last is +Inf
	exemplars []atomic.Pointer[exemplar]
	sumBits   atomic.Uint64
	count     atomic.Uint64
}

// exemplar links one concrete observation in a bucket to the trace
// that produced it — the P99 bucket's pointer into the flight
// recorder. Last write wins per bucket.
type exemplar struct {
	value float64
	trace string
	ts    time.Time
}

// exemplarNow stamps exemplars; a seam so the exposition golden test
// can pin bytes.
var exemplarNow = time.Now

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h.reg.disabled.Load() {
		return
	}
	h.counts[h.bucketOf(v)].Add(1)
	addFloat(&h.sumBits, v)
	h.count.Add(1)
}

// bucketOf returns the index of the bucket containing v.
// Buckets are few (≤ ~20): linear scan beats binary search here.
func (h *Histogram) bucketOf(v float64) int {
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	return i
}

// ObserveExemplar records one value and, when traceID is non-empty,
// attaches it as the bucket's exemplar so the exposition links that
// latency band to a recorded trace. With an empty traceID it is
// exactly Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h.reg.disabled.Load() {
		return
	}
	i := h.bucketOf(v)
	h.counts[i].Add(1)
	addFloat(&h.sumBits, v)
	h.count.Add(1)
	if traceID != "" && i < len(h.exemplars) {
		h.exemplars[i].Store(&exemplar{value: v, trace: traceID, ts: exemplarNow()})
	}
}

// Since records the seconds elapsed from start — the one-line latency
// observation: defer hist.Since(time.Now()) brackets a stage.
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Summary is a histogram digest for human-facing stats surfaces.
type Summary struct {
	// Count and Sum are the exact totals.
	Count uint64
	Sum   float64
	// Mean is Sum/Count (0 when empty).
	Mean float64
	// P50/P95/P99 are bucket-interpolated quantile estimates, bounded by
	// the bucket layout's resolution.
	P50, P95, P99 float64
}

// Summary digests the histogram's current state.
func (h *Histogram) Summary() Summary {
	if h == nil {
		return Summary{}
	}
	n := h.count.Load()
	s := Summary{Count: n, Sum: math.Float64frombits(h.sumBits.Load())}
	if n == 0 {
		return s
	}
	s.Mean = s.Sum / float64(n)
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	s.P50 = quantile(0.50, counts, h.buckets, n)
	s.P95 = quantile(0.95, counts, h.buckets, n)
	s.P99 = quantile(0.99, counts, h.buckets, n)
	return s
}

// quantile estimates the q-quantile by linear interpolation within the
// bucket holding the target rank; values beyond the last finite bucket
// report that bucket's bound (the histogram cannot resolve further).
func quantile(q float64, counts []uint64, buckets []float64, total uint64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(buckets) {
			if len(buckets) == 0 {
				return 0
			}
			return buckets[len(buckets)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = buckets[i-1]
		}
		hi := buckets[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	if len(buckets) == 0 {
		return 0
	}
	return buckets[len(buckets)-1]
}

// WritePrometheus writes every family in classic Prometheus text
// exposition format (version 0.0.4), families and series in stable
// sorted order. The 0.0.4 grammar allows no tokens after the sample
// value, so this exposition never carries exemplars — scrapers that
// want them negotiate OpenMetrics (WriteOpenMetrics) instead.
func (r *Registry) WritePrometheus(w io.Writer) error { return r.write(w, false) }

// WriteOpenMetrics writes the same families in OpenMetrics text
// format: counter HELP/TYPE lines drop the _total suffix from the
// family name (samples keep it, per the spec), histogram bucket lines
// carry their exemplars, and the exposition ends with # EOF.
func (r *Registry) WriteOpenMetrics(w io.Writer) error { return r.write(w, true) }

func (r *Registry) write(w io.Writer, openMetrics bool) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families)+len(r.gaugeFuncs))
	for name := range r.families {
		names = append(names, name)
	}
	for name := range r.gaugeFuncs {
		if _, dup := r.families[name]; !dup {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	families := make([]*family, 0, len(names))
	funcs := make(map[string]*gaugeFunc, len(r.gaugeFuncs))
	for _, name := range names {
		if f, ok := r.families[name]; ok {
			families = append(families, f)
		}
		if gf, ok := r.gaugeFuncs[name]; ok {
			funcs[name] = gf
		}
	}
	r.mu.RUnlock()

	var b strings.Builder
	fi := 0
	for _, name := range names {
		if gf, ok := funcs[name]; ok {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
				name, escapeHelp(gf.help), name, name, fmtFloat(gf.fn()))
			continue
		}
		f := families[fi]
		fi++
		f.write(&b, openMetrics)
	}
	if openMetrics {
		b.WriteString("# EOF\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// write renders one family's series.
func (f *family) write(b *strings.Builder, openMetrics bool) {
	famName := f.name
	if openMetrics && f.kind == kindCounter {
		famName = strings.TrimSuffix(famName, "_total")
	}
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", famName, escapeHelp(f.help), famName, f.kind)
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		key string
		s   any
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{k, f.series[k]})
	}
	f.mu.Unlock()

	for _, rw := range rows {
		values := strings.Split(rw.key, "\x1f")
		if rw.key == "" {
			values = nil
		}
		switch s := rw.s.(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), fmtFloat(s.Value()))
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), fmtFloat(s.Value()))
		case *Histogram:
			exemplar := func(i int) string {
				if !openMetrics {
					return ""
				}
				return s.exemplarString(i)
			}
			var cum uint64
			for i, ub := range s.buckets {
				cum += s.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d%s\n", f.name, labelString(f.labels, values, "le", fmtFloat(ub)), cum, exemplar(i))
			}
			cum += s.counts[len(s.buckets)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d%s\n", f.name, labelString(f.labels, values, "le", "+Inf"), cum, exemplar(len(s.buckets)))
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), fmtFloat(math.Float64frombits(s.sumBits.Load())))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), s.count.Load())
		}
	}
}

// exemplarString renders the OpenMetrics exemplar suffix for one
// bucket (" # {trace_id=\"...\"} value timestamp"), or "" when the
// bucket has never carried an exemplar. Only the OpenMetrics
// exposition emits it — the classic 0.0.4 grammar rejects any token
// after the sample value, so a stored exemplar must never leak there.
func (h *Histogram) exemplarString(i int) string {
	if i >= len(h.exemplars) {
		return ""
	}
	e := h.exemplars[i].Load()
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s %s",
		e.trace, fmtFloat(e.value),
		strconv.FormatFloat(float64(e.ts.UnixMilli())/1000, 'f', 3, 64))
}

// labelString renders {k="v",...}, optionally with one extra pair
// (histogram le), or "" when there are no labels at all.
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, "%s=%q", n, escapeLabel(v))
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format (the %q
// above already escapes quotes and backslashes; newlines become \n
// through it too, so only pass-through is needed).
func escapeLabel(v string) string { return v }

// escapeHelp escapes backslashes and newlines in help text.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// fmtFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler serves reg at GET /metrics, negotiating the exposition
// format: a client whose Accept header names application/openmetrics-text
// gets the OpenMetrics exposition (exemplars, # EOF terminator);
// everyone else gets the classic 0.0.4 text format, which carries no
// exemplars because its grammar forbids tokens after the sample value.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if acceptsOpenMetrics(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			_ = reg.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// acceptsOpenMetrics reports whether the Accept header explicitly
// names the OpenMetrics media type. q-values are deliberately ignored:
// a scraper that lists the type at all can parse it, and Prometheus
// itself sends it first when OpenMetrics is enabled.
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if strings.EqualFold(mt, "application/openmetrics-text") {
			return true
		}
	}
	return false
}
