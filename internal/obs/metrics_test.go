package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the Prometheus text format byte for byte:
// HELP/TYPE comments, stable family and series ordering, label quoting,
// cumulative histogram buckets with the implicit +Inf, and GaugeFunc
// sampling at scrape time.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests handled.", "route", "code")
	c.With("/v1/ask", "2xx").Add(3)
	c.With("/v1/ask", "5xx").Inc()
	g := r.Gauge("test_depth", "Queue depth.")
	g.With().Set(7)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.With().Observe(0.005)
	h.With().Observe(0.05)
	h.With().Observe(0.05)
	h.With().Observe(5)
	r.GaugeFunc("test_live", "Sampled at scrape.", func() float64 { return 2.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP test_depth Queue depth.
# TYPE test_depth gauge
test_depth 7
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 3
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 5.105
test_latency_seconds_count 4
# HELP test_live Sampled at scrape.
# TYPE test_live gauge
test_live 2.5
# HELP test_requests_total Requests handled.
# TYPE test_requests_total counter
test_requests_total{route="/v1/ask",code="2xx"} 3
test_requests_total{route="/v1/ask",code="5xx"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRegistryConcurrency hammers one counter family and one histogram
// family from many goroutines — run under -race in CI — and checks the
// totals are exact (no lost updates in the CAS float adds).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	cf := r.Counter("hammer_total", "h", "worker")
	hf := r.Histogram("hammer_seconds", "h", []float64{0.001, 0.01, 0.1})

	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%4))
			for i := 0; i < perWorker; i++ {
				cf.With(lbl).Inc()
				hf.With().Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	wg.Wait()

	var total float64
	for _, lbl := range []string{"a", "b", "c", "d"} {
		total += cf.With(lbl).Value()
	}
	if want := float64(workers * perWorker); total != want {
		t.Errorf("counter total = %v, want %v", total, want)
	}
	if got := hf.With().Summary().Count; got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestDisabledRegistrySkipsObservations verifies SetEnabled(false)
// really drops updates (the metrics-off benchmark leg relies on it)
// and that re-enabling resumes recording.
func TestDisabledRegistrySkipsObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c").With()
	h := r.Histogram("h_seconds", "h", nil).With()
	r.SetEnabled(false)
	c.Inc()
	h.Observe(1)
	if c.Value() != 0 || h.Summary().Count != 0 {
		t.Fatalf("disabled registry recorded: counter=%v histCount=%d", c.Value(), h.Summary().Count)
	}
	r.SetEnabled(true)
	c.Inc()
	h.Observe(1)
	if c.Value() != 1 || h.Summary().Count != 1 {
		t.Fatalf("re-enabled registry did not record: counter=%v histCount=%d", c.Value(), h.Summary().Count)
	}
}

// TestHistogramSummaryQuantiles sanity-checks the bucket-interpolated
// quantile estimates against a known distribution.
func TestHistogramSummaryQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "q", []float64{0.1, 0.2, 0.5, 1}).With()
	// 100 observations uniform in (0, 0.1]: everything lands in the
	// first bucket, so quantiles interpolate within [0, 0.1].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 1000)
	}
	s := h.Summary()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean < 0.05 || s.Mean > 0.051 {
		t.Errorf("mean = %v, want ~0.0505", s.Mean)
	}
	if s.P50 <= 0 || s.P50 > 0.1 {
		t.Errorf("p50 = %v, want in (0, 0.1]", s.P50)
	}
	if s.P99 <= s.P50 || s.P99 > 0.1 {
		t.Errorf("p99 = %v, want in (p50, 0.1]", s.P99)
	}
	// A value beyond the last finite bucket reports that bound.
	h.Observe(100)
	for i := 0; i < 300; i++ {
		h.Observe(100)
	}
	if s := h.Summary(); s.P99 != 1 {
		t.Errorf("overflow-heavy p99 = %v, want last finite bound 1", s.P99)
	}
}

// TestFindHistogram verifies lookup-without-create semantics.
func TestFindHistogram(t *testing.T) {
	r := NewRegistry()
	if r.FindHistogram("nope") != nil {
		t.Fatal("found a histogram in an empty registry")
	}
	hf := r.Histogram("stage_seconds", "s", nil, "stage")
	if r.FindHistogram("stage_seconds", "extract") != nil {
		t.Fatal("FindHistogram created a series")
	}
	hf.With("extract").Observe(0.5)
	h := r.FindHistogram("stage_seconds", "extract")
	if h == nil {
		t.Fatal("existing series not found")
	}
	if h.Summary().Count != 1 {
		t.Fatalf("wrong series: count=%d", h.Summary().Count)
	}
	if r.FindHistogram("stage_seconds", "integrate") != nil {
		t.Fatal("found a series for unobserved label")
	}
}

// TestGaugeFuncReplace pins replace-on-register: the latest registered
// function wins, which is how each newly constructed System takes over
// the process-wide queue-depth gauges.
func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("depth", "d", func() float64 { return 1 })
	r.GaugeFunc("depth", "d", func() float64 { return 2 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "depth 2\n") {
		t.Errorf("replace-on-register failed:\n%s", b.String())
	}
}

// TestHistogramSince covers the timing helper.
func TestHistogramSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "t", nil).With()
	h.Since(time.Now().Add(-10 * time.Millisecond))
	s := h.Summary()
	if s.Count != 1 || s.Sum < 0.01 || s.Sum > 10 {
		t.Errorf("Since recorded count=%d sum=%v", s.Count, s.Sum)
	}
}
