package obs

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
	"unicode/utf8"
)

// withRecorder installs r as the process recorder for one test and
// restores the previous one afterwards.
func withRecorder(t *testing.T, r *Recorder) {
	t.Helper()
	prev := DefaultRecorder()
	SetDefaultRecorder(r)
	t.Cleanup(func() { SetDefaultRecorder(prev) })
}

// TestStartSpanDisabledIsNoop pins the hot-path contract: with no
// recorder installed and no parent span, StartSpan returns the exact
// ctx it was given plus a nil span, and every Span method is nil-safe.
func TestStartSpanDisabledIsNoop(t *testing.T) {
	withRecorder(t, nil)
	ctx := context.Background()
	got, sp := StartSpan(ctx, "ask")
	if got != ctx {
		t.Error("StartSpan with tracing off returned a derived context")
	}
	if sp != nil {
		t.Fatalf("StartSpan with tracing off returned a span: %+v", sp)
	}
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	sp.SetError(errors.New("x"))
	sp.End()
	if id := sp.TraceID(); id != "" {
		t.Errorf("nil span TraceID = %q, want empty", id)
	}
	if id := sp.SpanID(); id != 0 {
		t.Errorf("nil span SpanID = %d, want 0", id)
	}
	if v := sp.Snapshot(); v != nil {
		t.Errorf("nil span Snapshot = %+v, want nil", v)
	}
}

// TestSpanTreeSnapshot builds a small tree and checks the recorded
// structure: parent/child nesting, attributes, the error flag, and the
// trace ID reusing the context's flat ID.
func TestSpanTreeSnapshot(t *testing.T) {
	withRecorder(t, NewRecorder(RecorderConfig{Capacity: 4, Slow: time.Nanosecond}))

	ctx := WithTrace(context.Background(), "req-1")
	ctx, root := StartSpan(ctx, "http_request")
	if got := root.TraceID(); got != "req-1" {
		t.Fatalf("root TraceID = %q, want req-1 (the flat ID)", got)
	}
	childCtx, child := StartSpan(ctx, "extract")
	child.SetAttr("type", "request")
	_, grand := StartSpan(childCtx, "ner")
	grand.SetInt("entities", 2)
	grand.End()
	child.End()
	_, errSpan := StartSpan(ctx, "answer")
	errSpan.SetError(errors.New("no results"))
	errSpan.End()
	root.End()

	v, ok := DefaultRecorder().Get("req-1")
	if !ok {
		t.Fatal("completed trace not kept (Slow=1ns should always keep)")
	}
	if v.KeepReason != "error" {
		// The errored span outranks the slow bar in the keep policy.
		t.Errorf("KeepReason = %q, want error", v.KeepReason)
	}
	if !v.Errored {
		t.Error("trace with an errored span not marked Errored")
	}
	if v.SpanCount != 4 {
		t.Errorf("SpanCount = %d, want 4", v.SpanCount)
	}
	r := v.Root
	if r == nil || r.Name != "http_request" || len(r.Children) != 2 {
		t.Fatalf("root = %+v, want http_request with 2 children", r)
	}
	ex := r.Children[0]
	if ex.Name != "extract" || len(ex.Children) != 1 || ex.Children[0].Name != "ner" {
		t.Errorf("first child = %+v, want extract > ner", ex)
	}
	if len(ex.Attrs) != 1 || ex.Attrs[0] != (Attr{Key: "type", Value: "request"}) {
		t.Errorf("extract attrs = %+v", ex.Attrs)
	}
	if got := r.Children[1].Error; got != "no results" {
		t.Errorf("answer span error = %q, want no results", got)
	}
}

// TestForceSpanWithoutRecorder pins the explain path's independence
// from deployment configuration: ForceSpan records a snapshotable
// trace even when tracing is off process-wide.
func TestForceSpanWithoutRecorder(t *testing.T) {
	withRecorder(t, nil)
	ctx, sp := ForceSpan(context.Background(), "ask_explain")
	_, child := StartSpan(ctx, "ask")
	child.End()
	sp.End()
	v := sp.Snapshot()
	if v == nil || v.Root == nil {
		t.Fatal("ForceSpan trace did not snapshot without a recorder")
	}
	if len(v.Root.Children) != 1 || v.Root.Children[0].Name != "ask" {
		t.Errorf("snapshot = %+v, want ask_explain > ask", v.Root)
	}
	if v.TraceID == "" {
		t.Error("forced trace minted no ID")
	}
}

// TestRecorderKeepPolicy is the policy table: which completed traces
// the flight recorder retains, and why.
func TestRecorderKeepPolicy(t *testing.T) {
	never := time.Hour // no trace in this test is genuinely slow
	cases := []struct {
		name   string
		cfg    RecorderConfig
		run    func(id string)
		reason string // "" means dropped
	}{
		{"slow_always_kept", RecorderConfig{Slow: time.Nanosecond}, nil, "slow"},
		{"fast_dropped", RecorderConfig{Slow: never}, nil, ""},
		{"errored_kept", RecorderConfig{Slow: never}, func(id string) {
			ctx := WithTrace(context.Background(), id)
			_, sp := StartSpan(ctx, "ask")
			sp.SetError(errors.New("boom"))
			sp.End()
		}, "error"},
		{"forced_kept", RecorderConfig{Slow: never}, func(id string) {
			ctx := WithTrace(context.Background(), id)
			_, sp := ForceSpan(ctx, "ask_explain")
			sp.End()
		}, "forced"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := NewRecorder(tc.cfg)
			withRecorder(t, rec)
			if tc.run == nil {
				tc.run = func(id string) {
					ctx := WithTrace(context.Background(), id)
					_, sp := StartSpan(ctx, "ask")
					sp.End()
				}
			}
			tc.run("t1")
			v, ok := rec.Get("t1")
			if tc.reason == "" {
				if ok {
					t.Fatalf("trace kept with reason %q, want dropped", v.KeepReason)
				}
				if st := rec.Stats(); st.Dropped != 1 || st.KeptTotal != 0 {
					t.Errorf("stats = %+v, want 1 dropped", st)
				}
				return
			}
			if !ok {
				t.Fatal("trace dropped, want kept")
			}
			if v.KeepReason != tc.reason {
				t.Errorf("KeepReason = %q, want %q", v.KeepReason, tc.reason)
			}
		})
	}
}

// TestRecorderSampling checks 1-in-N retention of ordinary traces:
// with SampleN=3, every third fast, clean trace is kept.
func TestRecorderSampling(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Capacity: 16, Slow: time.Hour, SampleN: 3})
	withRecorder(t, rec)
	for i := 0; i < 9; i++ {
		ctx := WithTrace(context.Background(), fmt.Sprintf("t%d", i))
		_, sp := StartSpan(ctx, "ask")
		sp.End()
	}
	st := rec.Stats()
	if st.Completed != 9 || st.KeptTotal != 3 || st.Dropped != 6 {
		t.Fatalf("stats = %+v, want 9 completed / 3 kept / 6 dropped", st)
	}
	for _, s := range rec.Recent(10) {
		if s.KeepReason != "sampled" {
			t.Errorf("trace %s kept with reason %q, want sampled", s.TraceID, s.KeepReason)
		}
	}
}

// TestRecorderEviction fills the ring past capacity and checks the
// oldest kept traces are displaced, stay counted, and stop resolving
// by ID.
func TestRecorderEviction(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Capacity: 2, Slow: time.Nanosecond})
	withRecorder(t, rec)
	for i := 0; i < 5; i++ {
		ctx := WithTrace(context.Background(), fmt.Sprintf("t%d", i))
		_, sp := StartSpan(ctx, "ask")
		sp.End()
	}
	st := rec.Stats()
	if st.Kept != 2 || st.KeptTotal != 5 || st.Evicted != 3 {
		t.Fatalf("stats = %+v, want kept 2 / kept_total 5 / evicted 3", st)
	}
	for i := 0; i < 3; i++ {
		if _, ok := rec.Get(fmt.Sprintf("t%d", i)); ok {
			t.Errorf("evicted trace t%d still resolves by ID", i)
		}
	}
	recent := rec.Recent(10)
	if len(recent) != 2 || recent[0].TraceID != "t4" || recent[1].TraceID != "t3" {
		t.Errorf("Recent = %+v, want [t4 t3]", recent)
	}
}

// TestSpanCapDropsChildren pins the per-trace memory bound: spans past
// maxSpansPerTrace are counted, not recorded, and the snapshot reports
// the drop.
func TestSpanCapDropsChildren(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Capacity: 2, Slow: time.Nanosecond})
	withRecorder(t, rec)
	ctx := WithTrace(context.Background(), "big")
	ctx, root := StartSpan(ctx, "http_request")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, sp := StartSpan(ctx, "shard_run")
		sp.End()
	}
	root.End()
	v, ok := rec.Get("big")
	if !ok {
		t.Fatal("capped trace not kept")
	}
	if v.SpanCount != maxSpansPerTrace {
		t.Errorf("SpanCount = %d, want the cap %d", v.SpanCount, maxSpansPerTrace)
	}
	if v.SpansDropped != 11 {
		t.Errorf("SpansDropped = %d, want 11", v.SpansDropped)
	}
}

// TestRecorderConcurrency hammers trace creation and completion from
// many goroutines while readers snapshot every view — run under -race
// in CI. Counter totals must be exact: every trace completes exactly
// once.
func TestRecorderConcurrency(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Capacity: 32, Slow: time.Nanosecond})
	withRecorder(t, rec)

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec.Get("w0-10")
				rec.Recent(10)
				rec.Slowest(10)
				rec.Active(10)
				rec.Stats()
			}
		}()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx := WithTrace(context.Background(), fmt.Sprintf("w%d-%d", w, i))
				ctx, root := StartSpan(ctx, "http_request")
				_, child := StartSpan(ctx, "extract")
				child.SetInt("i", i)
				child.End()
				root.End()
			}
		}(w)
	}
	// The writers drive Completed to its total; once there, stop the
	// readers and join everyone.
	for rec.Stats().Completed != workers*perWorker {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	st := rec.Stats()
	if st.Completed != workers*perWorker {
		t.Errorf("completed = %d, want %d", st.Completed, workers*perWorker)
	}
	if st.KeptTotal != workers*perWorker {
		t.Errorf("kept_total = %d, want %d (1ns slow bar keeps everything)", st.KeptTotal, workers*perWorker)
	}
	if st.Kept != 32 {
		t.Errorf("kept = %d, want ring capacity 32", st.Kept)
	}
	if st.Active != 0 {
		t.Errorf("active = %d, want 0 after all roots ended", st.Active)
	}
}

// TestTracesHandler exercises both renderings of the debug view and
// the disabled message.
func TestTracesHandler(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Capacity: 4, Slow: time.Nanosecond})
	withRecorder(t, rec)
	_, sp := StartSpan(WithTrace(context.Background(), "dbg-2"), "http_request")
	sp.End()

	h := TracesHandler(func() *Recorder { return rec })
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces", nil))
	if got := w.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/html") {
		t.Errorf("Content-Type = %q, want text/html", got)
	}
	if body := w.Body.String(); !strings.Contains(body, "dbg-2") || !strings.Contains(body, "flight recorder") {
		t.Errorf("HTML view missing recorded trace: %s", body)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces?format=json", nil))
	if got := w.Header().Get("Content-Type"); got != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", got)
	}
	if body := w.Body.String(); !strings.Contains(body, `"enabled": true`) || !strings.Contains(body, "dbg-2") {
		t.Errorf("JSON view missing recorded trace: %s", body)
	}

	w = httptest.NewRecorder()
	TracesHandler(func() *Recorder { return nil }).ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces", nil))
	if body := w.Body.String(); !strings.Contains(body, "tracing disabled") {
		t.Errorf("nil-recorder view missing disabled message: %s", body)
	}
}

// TestExemplarExpositionGolden pins the two expositions byte for byte:
// OpenMetrics bucket lines gain " # {trace_id=...} value timestamp"
// only on buckets that hold an exemplar (plain Observe never attaches
// one), counters drop _total from HELP/TYPE, and the output ends with
// # EOF — while the classic 0.0.4 exposition of the same registry
// carries no exemplars at all, because its grammar rejects any token
// after the sample value.
func TestExemplarExpositionGolden(t *testing.T) {
	prev := exemplarNow
	exemplarNow = func() time.Time { return time.UnixMilli(1700000000123) }
	defer func() { exemplarNow = prev }()

	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.With().Observe(0.005)                      // no exemplar on le=0.01
	h.With().ObserveExemplar(0.05, "trace-slow") // exemplar on le=0.1
	h.With().ObserveExemplar(5, "trace-inf")     // exemplar on +Inf
	h.With().ObserveExemplar(0.07, "")           // empty trace ID: counted, no exemplar
	r.Counter("test_requests_total", "Requests.").With().Inc()

	var om strings.Builder
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	want := `# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 3 # {trace_id="trace-slow"} 0.05 1700000000.123
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4 # {trace_id="trace-inf"} 5 1700000000.123
test_latency_seconds_sum 5.125
test_latency_seconds_count 4
# HELP test_requests Requests.
# TYPE test_requests counter
test_requests_total 1
# EOF
`
	if got := om.String(); got != want {
		t.Errorf("OpenMetrics exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	var classic strings.Builder
	if err := r.WritePrometheus(&classic); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	wantClassic := `# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 3
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 5.125
test_latency_seconds_count 4
# HELP test_requests_total Requests.
# TYPE test_requests_total counter
test_requests_total 1
`
	if got := classic.String(); got != wantClassic {
		t.Errorf("classic exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, wantClassic)
	}
}

// TestMetricsHandlerNegotiation pins the /metrics content negotiation:
// the default scrape gets classic 0.0.4 text with no exemplar suffix,
// and an Accept header naming application/openmetrics-text switches
// the response to the OpenMetrics exposition with exemplars and # EOF.
func TestMetricsHandlerNegotiation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("nego_latency_seconds", "Latency.", []float64{0.1})
	h.With().ObserveExemplar(0.05, "trace-nego")
	handler := Handler(r)

	w := httptest.NewRecorder()
	handler.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if got := w.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain; version=0.0.4") {
		t.Errorf("default Content-Type = %q, want classic 0.0.4", got)
	}
	if body := w.Body.String(); strings.Contains(body, " # {") || strings.Contains(body, "# EOF") {
		t.Errorf("classic exposition leaks OpenMetrics syntax:\n%s", body)
	}

	w = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text;version=1.0.0;q=0.5,text/plain;version=0.0.4;q=0.2")
	handler.ServeHTTP(w, req)
	if got := w.Header().Get("Content-Type"); !strings.HasPrefix(got, "application/openmetrics-text") {
		t.Errorf("negotiated Content-Type = %q, want openmetrics", got)
	}
	body := w.Body.String()
	if !strings.Contains(body, `# {trace_id="trace-nego"} 0.05`) {
		t.Errorf("OpenMetrics exposition missing exemplar:\n%s", body)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("OpenMetrics exposition not terminated by # EOF:\n%s", body)
	}
}

// TestTruncateAttrRuneBoundary pins that attribute truncation never
// splits a multi-byte UTF-8 rune: the cut backs up to a rune start, so
// the stored value stays valid UTF-8 and the JSON trace view never
// shows a U+FFFD replacement character.
func TestTruncateAttrRuneBoundary(t *testing.T) {
	for _, v := range []string{
		strings.Repeat("a", maxAttrValueLen+10),
		strings.Repeat("a", maxAttrValueLen-1) + "é",   // 2-byte rune straddles the cut
		strings.Repeat("日", maxAttrValueLen),           // 3-byte runes throughout
		strings.Repeat("a", maxAttrValueLen-3) + "🌍🌍🌍", // 4-byte runes at the cut
	} {
		got := truncateAttr(v)
		if !utf8.ValidString(got) {
			t.Errorf("truncateAttr(%q) = %q: invalid UTF-8", v, got)
		}
		if len(got) > maxAttrValueLen+len("…") {
			t.Errorf("truncateAttr(%q) = %d bytes, want ≤ %d", v, len(got), maxAttrValueLen+len("…"))
		}
		if !strings.HasSuffix(got, "…") {
			t.Errorf("truncateAttr(%q) = %q: missing ellipsis", v, got)
		}
	}
	if got := truncateAttr("short"); got != "short" {
		t.Errorf("truncateAttr(short) = %q, want unchanged", got)
	}
}
