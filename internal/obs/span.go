// Span tracing: the per-request timeline layer on top of the flat
// trace IDs. A Span brackets one stage of work (HTTP request, pipeline
// stage, per-shard query, cache lookup); spans form a tree per trace,
// carry bounded key-value attributes and an error flag, and on root
// completion the whole trace is offered to the process-wide flight
// Recorder, which decides whether to keep it (slow, errored, forced,
// or 1-in-N sampled).
//
// The hot-path contract mirrors the metrics registry's disabled mode:
// with no recorder installed, StartSpan is one context value lookup
// plus one atomic pointer load, returns the caller's own ctx and a nil
// *Span, and every Span method is nil-safe — the drain benchmark pins
// this as free.
package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"
)

// spanKey carries the current *Span through context.
type spanKey struct{}

// Caps keep a single trace's memory bounded no matter how wide a
// fan-out gets; spans past the cap are counted, not recorded.
const (
	maxSpansPerTrace = 512
	maxAttrsPerSpan  = 8
	maxAttrValueLen  = 128
)

// Attr is one key-value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation within a trace. A nil *Span is a valid
// no-op receiver for every method, so call sites never branch on
// whether tracing is enabled.
type Span struct {
	t      *trace
	id     int
	parent int
	name   string
	start  time.Time

	// Guarded by t.mu — spans from a shard fan-out finish on their own
	// goroutines while /debug/traces snapshots the trace.
	attrs []Attr
	err   string
	dur   time.Duration
	done  bool
}

// trace is the span tree for one trace ID, accumulated while any span
// is open and handed to the recorder when the root span ends.
type trace struct {
	id        string
	rec       *Recorder
	start     time.Time
	forceKeep bool

	mu      sync.Mutex
	spans   []*Span // creation order; spans[0] is the root
	open    int
	dropped int
	errored bool
	done    bool
	reason  string // keep decision, set by the recorder
}

// defaultRecorder is the process-wide flight recorder; nil means span
// tracing is off (the default).
var defaultRecorder atomic.Pointer[Recorder]

// SetDefaultRecorder installs (or, with nil, removes) the process-wide
// recorder new root spans report to. In-flight traces keep their
// original recorder.
func SetDefaultRecorder(r *Recorder) { defaultRecorder.Store(r) }

// DefaultRecorder returns the installed recorder, or nil when tracing
// is off.
func DefaultRecorder() *Recorder { return defaultRecorder.Load() }

// StartSpan starts a span named name. Inside an already-recording
// trace it adds a child span; at the top of a request it starts a new
// trace rooted here — but only when a recorder is installed. When not
// recording it returns ctx unchanged and a nil span.
//
// Span names must come from a bounded set (the metriclabels analyzer
// enforces constants); variable data belongs in SetAttr.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		return startChild(ctx, parent, name)
	}
	rec := defaultRecorder.Load()
	if rec == nil {
		return ctx, nil
	}
	return startRoot(ctx, rec, name, false)
}

// ForceSpan is StartSpan for the explain path: it records even with no
// recorder installed (the caller snapshots the trace itself) and marks
// the trace force-kept, so an explained request is always fetchable by
// ID afterwards when a recorder exists.
func ForceSpan(ctx context.Context, name string) (context.Context, *Span) {
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		parent.t.mu.Lock()
		parent.t.forceKeep = true
		parent.t.mu.Unlock()
		return startChild(ctx, parent, name)
	}
	return startRoot(ctx, defaultRecorder.Load(), name, true)
}

// SpanFromContext returns the current span, or nil when the context is
// not being traced.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// startRoot begins a new trace rooted at a span named name, reusing
// the context's flat trace ID so log lines, X-Request-Id and the
// recorded timeline all correlate.
func startRoot(ctx context.Context, rec *Recorder, name string, force bool) (context.Context, *Span) {
	id := Trace(ctx)
	if id == "" {
		id = NewTraceID()
		ctx = WithTrace(ctx, id)
	}
	now := time.Now()
	t := &trace{id: id, rec: rec, start: now, forceKeep: force}
	root := &Span{t: t, id: 1, name: name, start: now}
	t.spans = append(t.spans, root)
	t.open = 1
	if rec != nil {
		rec.register(t)
	}
	return context.WithValue(ctx, spanKey{}, root), root
}

func startChild(ctx context.Context, parent *Span, name string) (context.Context, *Span) {
	sp := parent.t.newSpan(name, parent.id)
	if sp == nil {
		return ctx, nil // trace at its span cap; keep the parent current
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// newSpan allocates the next span in the trace, or nil past the cap.
func (t *trace) newSpan(name string, parent int) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
		return nil
	}
	sp := &Span{t: t, id: len(t.spans) + 1, parent: parent, name: name, start: time.Now()}
	t.spans = append(t.spans, sp)
	t.open++
	return sp
}

// SetAttr annotates the span; at most maxAttrsPerSpan stick and long
// values are truncated. Safe on a nil span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	value = truncateAttr(value)
	s.t.mu.Lock()
	if len(s.attrs) < maxAttrsPerSpan {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.t.mu.Unlock()
}

// truncateAttr bounds v to maxAttrValueLen bytes, backing the cut up
// to a rune boundary so a multi-byte UTF-8 sequence is never split
// (a split would surface as U+FFFD in the JSON trace view).
func truncateAttr(v string) string {
	if len(v) <= maxAttrValueLen {
		return v
	}
	cut := maxAttrValueLen
	for cut > 0 && !utf8.RuneStart(v[cut]) {
		cut--
	}
	return v[:cut] + "…"
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.Itoa(v))
}

// SetError flags the span (and therefore the trace) as errored; an
// errored trace is always kept by the recorder. Nil err is a no-op.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	msg := truncateAttr(err.Error())
	s.t.mu.Lock()
	s.err = msg
	s.t.errored = true
	s.t.mu.Unlock()
}

// TraceID returns the span's trace ID ("" on nil) — the exemplar hook.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.t.id
}

// SpanID returns the span's ID within its trace (0 on nil; recorded
// spans start at 1).
func (s *Span) SpanID() int {
	if s == nil {
		return 0
	}
	return s.id
}

// End finishes the span. Ending the root span completes the trace and
// offers it to the recorder; children still open at that point show as
// unfinished in the snapshot. Safe on a nil span and idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	if !s.done {
		s.done = true
		s.dur = time.Since(s.start)
		t.open--
	}
	complete := s.id == 1 && !t.done
	if complete {
		t.done = true
	}
	rec := t.rec
	t.mu.Unlock()
	if complete && rec != nil {
		rec.complete(t)
	}
}

// Snapshot renders the span's whole trace as a view tree — the explain
// path snapshots its ForceSpan trace directly, recorder or not. Call
// after End; open spans render with Duration 0 and Unfinished set.
func (s *Span) Snapshot() *TraceView {
	if s == nil {
		return nil
	}
	return s.t.snapshot()
}
