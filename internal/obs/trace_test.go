package obs

import (
	"context"
	"fmt"
	"log/slog"
	"regexp"
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if Trace(ctx) != "" {
		t.Fatal("empty context carries a trace")
	}
	ctx = WithTrace(ctx, "abc123")
	if got := Trace(ctx); got != "abc123" {
		t.Fatalf("Trace = %q, want abc123", got)
	}
	// Empty IDs are not stored; the previous ID stays visible.
	if got := Trace(WithTrace(ctx, "")); got != "abc123" {
		t.Fatalf("empty WithTrace clobbered trace: %q", got)
	}
}

func TestEnsureTrace(t *testing.T) {
	ctx, id := EnsureTrace(context.Background())
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("minted ID %q is not 16 hex digits", id)
	}
	if Trace(ctx) != id {
		t.Fatal("minted ID not carried by returned context")
	}
	ctx2, id2 := EnsureTrace(ctx)
	if id2 != id || ctx2 != ctx {
		t.Fatal("EnsureTrace re-minted over an existing trace")
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestNewLoggerLevels(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, "text", "warn")
	l.Info("hidden")
	l.Warn("shown")
	out := b.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Errorf("level filtering wrong:\n%s", out)
	}

	b.Reset()
	l = NewLogger(&b, "json", "info")
	l.Info("hello", "k", "v")
	if !strings.HasPrefix(strings.TrimSpace(b.String()), "{") {
		t.Errorf("json format not honored:\n%s", b.String())
	}

	// Unknown values fall back instead of failing.
	b.Reset()
	l = NewLogger(&b, "bogus", "bogus")
	l.Info("fallback")
	if !strings.Contains(b.String(), "fallback") {
		t.Errorf("fallback logger dropped info line:\n%s", b.String())
	}
}

func TestLogfHandler(t *testing.T) {
	var lines []string
	h := NewLogfHandler(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	l := slog.New(h)
	l.Debug("quiet")
	l.Info("outcome", "trace", "deadbeef", "result", "merged")
	l.With("lane", 3).Error("flush failed", "err", "disk full")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %v", len(lines), lines)
	}
	if want := "outcome trace=deadbeef result=merged"; lines[0] != want {
		t.Errorf("line[0] = %q, want %q", lines[0], want)
	}
	if !strings.Contains(lines[1], "lane=3") || !strings.Contains(lines[1], "err=disk full") {
		t.Errorf("line[1] = %q missing attrs", lines[1])
	}
}
