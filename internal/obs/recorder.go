// The flight recorder: a bounded in-memory ring of completed traces.
// Keeping every trace at production rates is impossible, so the
// recorder applies an always-keep policy for the traces worth debugging
// (slower than the threshold, errored, or force-kept by the explain
// path) plus optional 1-in-N sampling for the rest; everything else is
// counted and dropped. GET /v1/traces/{id} and /debug/traces serve its
// contents.
package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// writeJSONDebug renders the debug payload; exposition-style two-space
// indentation to match the public API's writeJSON.
func writeJSONDebug(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// RecorderConfig sizes a flight recorder.
type RecorderConfig struct {
	// Capacity is the ring size in traces; <= 0 means 256.
	Capacity int
	// Slow is the always-keep latency threshold; <= 0 means 1s.
	Slow time.Duration
	// SampleN keeps one in N traces that no always-keep rule matched;
	// 0 (the default) disables sampling so only slow, errored and
	// forced traces are retained.
	SampleN int
}

// DefaultRecorderCapacity is the ring size used when a caller enables
// tracing without choosing one.
const DefaultRecorderCapacity = 256

// DefaultSlowThreshold is the always-keep latency bar when unset.
const DefaultSlowThreshold = time.Second

// Recorder is the bounded trace store. All methods are safe for
// concurrent use; a nil *Recorder is inert.
type Recorder struct {
	capacity int
	slow     time.Duration
	sampleN  int
	sampled  atomic.Uint64 // sampling counter, advanced per candidate

	mu     sync.Mutex
	ring   []*trace // kept traces, oldest first
	byID   map[string]*trace
	active map[string]*trace

	completed uint64
	kept      uint64
	dropped   uint64
	evicted   uint64
}

// NewRecorder builds a flight recorder; install it process-wide with
// SetDefaultRecorder.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultRecorderCapacity
	}
	if cfg.Slow <= 0 {
		cfg.Slow = DefaultSlowThreshold
	}
	return &Recorder{
		capacity: cfg.Capacity,
		slow:     cfg.Slow,
		sampleN:  cfg.SampleN,
		byID:     make(map[string]*trace),
		active:   make(map[string]*trace),
	}
}

// SlowThreshold returns the always-keep latency bar.
func (r *Recorder) SlowThreshold() time.Duration { return r.slow }

// register tracks a newly started trace for the active view. A second
// root with the same trace ID (a request reusing an X-Request-Id)
// simply displaces the old entry.
func (r *Recorder) register(t *trace) {
	r.mu.Lock()
	r.active[t.id] = t
	r.mu.Unlock()
}

// complete applies the keep policy to a finished trace. Never call
// with store locks held — span ends outside hot critical sections (the
// lockdiscipline analyzer pins this).
func (r *Recorder) complete(t *trace) {
	t.mu.Lock()
	dur := t.spans[0].dur
	reason := ""
	switch {
	case t.forceKeep:
		reason = "forced"
	case t.errored:
		reason = "error"
	case dur >= r.slow:
		reason = "slow"
	case r.sampleN > 0 && r.sampled.Add(1)%uint64(r.sampleN) == 0:
		reason = "sampled"
	}
	t.reason = reason
	t.mu.Unlock()

	r.mu.Lock()
	if r.active[t.id] == t {
		delete(r.active, t.id)
	}
	r.completed++
	if reason == "" {
		r.dropped++
		r.mu.Unlock()
		return
	}
	r.kept++
	if old, ok := r.byID[t.id]; ok {
		// Same trace ID kept twice: drop the older timeline in place.
		for i, rt := range r.ring {
			if rt == old {
				r.ring = append(r.ring[:i], r.ring[i+1:]...)
				break
			}
		}
	}
	r.ring = append(r.ring, t)
	r.byID[t.id] = t
	for len(r.ring) > r.capacity {
		r.evicted++
		delete(r.byID, r.ring[0].id)
		r.ring[0] = nil
		r.ring = r.ring[1:]
	}
	r.mu.Unlock()
}

// Get returns the kept trace with the given ID.
func (r *Recorder) Get(id string) (*TraceView, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	t, ok := r.byID[id]
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	return t.snapshot(), true
}

// Recent returns up to n kept traces, newest first.
func (r *Recorder) Recent(n int) []TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	traces := make([]*trace, 0, n)
	for i := len(r.ring) - 1; i >= 0 && len(traces) < n; i-- {
		traces = append(traces, r.ring[i])
	}
	r.mu.Unlock()
	return summarize(traces)
}

// Slowest returns up to n kept traces by descending root duration.
func (r *Recorder) Slowest(n int) []TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	traces := append([]*trace(nil), r.ring...)
	r.mu.Unlock()
	out := summarize(traces)
	sort.SliceStable(out, func(i, j int) bool { return out[i].DurationSeconds > out[j].DurationSeconds })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Active returns up to n traces whose root span has not ended yet —
// the requests in flight right now.
func (r *Recorder) Active(n int) []TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	traces := make([]*trace, 0, len(r.active))
	for _, t := range r.active {
		traces = append(traces, t)
	}
	r.mu.Unlock()
	out := summarize(traces)
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// RecorderStats is the recorder's own health view, surfaced through
// the facade's Stats.
type RecorderStats struct {
	// Capacity is the ring size; Kept is how many traces it holds now.
	Capacity int `json:"capacity"`
	Kept     int `json:"kept"`
	// Active counts traces whose root span is still open.
	Active int `json:"active"`
	// Completed/KeptTotal/Dropped/Evicted are lifetime counters:
	// finished traces seen, kept by policy, dropped by policy, and
	// kept-then-displaced by ring overflow.
	Completed uint64 `json:"completed"`
	KeptTotal uint64 `json:"kept_total"`
	Dropped   uint64 `json:"dropped"`
	Evicted   uint64 `json:"evicted"`
	// SlowThresholdSeconds and SampleN echo the policy knobs.
	SlowThresholdSeconds float64 `json:"slow_threshold_seconds"`
	SampleN              int     `json:"sample_n"`
}

// Stats returns current counters; zero value on a nil recorder.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return RecorderStats{
		Capacity:             r.capacity,
		Kept:                 len(r.ring),
		Active:               len(r.active),
		Completed:            r.completed,
		KeptTotal:            r.kept,
		Dropped:              r.dropped,
		Evicted:              r.evicted,
		SlowThresholdSeconds: r.slow.Seconds(),
		SampleN:              r.sampleN,
	}
}

// SpanView is one rendered span in a trace snapshot.
type SpanView struct {
	ID              int         `json:"id"`
	Name            string      `json:"name"`
	StartOffsetSecs float64     `json:"start_offset_seconds"`
	DurationSeconds float64     `json:"duration_seconds"`
	Unfinished      bool        `json:"unfinished,omitempty"`
	Error           string      `json:"error,omitempty"`
	Attrs           []Attr      `json:"attrs,omitempty"`
	Children        []*SpanView `json:"children,omitempty"`
}

// TraceView is a whole recorded trace as served by /v1/traces/{id}.
type TraceView struct {
	TraceID         string    `json:"trace_id"`
	Start           time.Time `json:"start"`
	DurationSeconds float64   `json:"duration_seconds"`
	Errored         bool      `json:"errored,omitempty"`
	SpanCount       int       `json:"span_count"`
	SpansDropped    int       `json:"spans_dropped,omitempty"`
	KeepReason      string    `json:"keep_reason,omitempty"`
	Root            *SpanView `json:"root"`
}

// TraceSummary is the listing row for the debug views.
type TraceSummary struct {
	TraceID         string    `json:"trace_id"`
	Root            string    `json:"root"`
	Start           time.Time `json:"start"`
	DurationSeconds float64   `json:"duration_seconds"`
	Errored         bool      `json:"errored,omitempty"`
	SpanCount       int       `json:"span_count"`
	KeepReason      string    `json:"keep_reason,omitempty"`
}

// snapshot copies the trace into an immutable view tree under t.mu.
// Spans whose parent was dropped at the cap re-attach to the root so
// the tree always accounts for every recorded span.
func (t *trace) snapshot() *TraceView {
	t.mu.Lock()
	defer t.mu.Unlock()
	views := make([]*SpanView, len(t.spans))
	for i, sp := range t.spans {
		views[i] = &SpanView{
			ID:              sp.id,
			Name:            sp.name,
			StartOffsetSecs: sp.start.Sub(t.start).Seconds(),
			DurationSeconds: sp.dur.Seconds(),
			Unfinished:      !sp.done,
			Error:           sp.err,
			Attrs:           append([]Attr(nil), sp.attrs...),
		}
	}
	for i, sp := range t.spans {
		if sp.parent == 0 {
			continue
		}
		parent := views[0]
		if sp.parent-1 < len(views) && sp.parent != sp.id {
			parent = views[sp.parent-1]
		}
		parent.Children = append(parent.Children, views[i])
	}
	v := &TraceView{
		TraceID:      t.id,
		Start:        t.start,
		Errored:      t.errored,
		SpanCount:    len(t.spans),
		SpansDropped: t.dropped,
		KeepReason:   t.reason,
	}
	if len(views) > 0 {
		v.Root = views[0]
		v.DurationSeconds = views[0].DurationSeconds
	}
	return v
}

func summarize(traces []*trace) []TraceSummary {
	out := make([]TraceSummary, 0, len(traces))
	for _, t := range traces {
		t.mu.Lock()
		s := TraceSummary{
			TraceID:    t.id,
			Start:      t.start,
			Errored:    t.errored,
			SpanCount:  len(t.spans),
			KeepReason: t.reason,
		}
		if len(t.spans) > 0 {
			s.Root = t.spans[0].name
			s.DurationSeconds = t.spans[0].dur.Seconds()
		}
		t.mu.Unlock()
		out = append(out, s)
	}
	return out
}

// debugTraceRows caps each section of the /debug/traces view.
const debugTraceRows = 50

// TracesHandler serves the recorder's recent/active/slowest view for
// the private debug listener: HTML by default, JSON with ?format=json.
// Works (empty) when rec is nil so the route can be mounted
// unconditionally.
func TracesHandler(rec func() *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r := rec()
		type payload struct {
			Enabled bool           `json:"enabled"`
			Stats   RecorderStats  `json:"stats"`
			Active  []TraceSummary `json:"active"`
			Recent  []TraceSummary `json:"recent"`
			Slowest []TraceSummary `json:"slowest"`
		}
		p := payload{
			Enabled: r != nil,
			Stats:   r.Stats(),
			Active:  r.Active(debugTraceRows),
			Recent:  r.Recent(debugTraceRows),
			Slowest: r.Slowest(debugTraceRows),
		}
		if req.URL.Query().Get("format") == "json" {
			writeJSONDebug(w, p)
			return
		}
		var b strings.Builder
		b.WriteString("<!DOCTYPE html><html><head><title>neogeo traces</title>" +
			"<style>body{font-family:monospace}table{border-collapse:collapse}" +
			"td,th{border:1px solid #999;padding:2px 8px;text-align:left}</style>" +
			"</head><body><h1>flight recorder</h1>")
		if !p.Enabled {
			b.WriteString("<p>tracing disabled — start with -trace-recorder &gt; 0</p></body></html>")
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			_, _ = w.Write([]byte(b.String()))
			return
		}
		sample := "off"
		if p.Stats.SampleN > 0 {
			sample = fmt.Sprintf("1/%d", p.Stats.SampleN)
		}
		fmt.Fprintf(&b, "<p>kept %d/%d · active %d · completed %d · dropped %d · evicted %d · slow ≥ %ss · sample %s</p>",
			p.Stats.Kept, p.Stats.Capacity, p.Stats.Active, p.Stats.Completed, p.Stats.Dropped,
			p.Stats.Evicted, fmtFloat(p.Stats.SlowThresholdSeconds), sample)
		section := func(title string, rows []TraceSummary) {
			fmt.Fprintf(&b, "<h2>%s</h2>", html.EscapeString(title))
			if len(rows) == 0 {
				b.WriteString("<p>none</p>")
				return
			}
			b.WriteString("<table><tr><th>trace</th><th>root</th><th>start</th><th>duration</th><th>spans</th><th>kept</th><th>err</th></tr>")
			for _, row := range rows {
				fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%ss</td><td>%d</td><td>%s</td><td>%v</td></tr>",
					html.EscapeString(row.TraceID), html.EscapeString(row.Root),
					row.Start.Format(time.RFC3339Nano), fmtFloat(row.DurationSeconds),
					row.SpanCount, html.EscapeString(row.KeepReason), row.Errored)
			}
			b.WriteString("</table>")
		}
		section("active", p.Active)
		section("recent", p.Recent)
		section("slowest", p.Slowest)
		b.WriteString("</body></html>")
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}
