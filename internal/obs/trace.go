package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Per-message tracing: a trace ID is minted when a message enters the
// system (HTTP submit, facade Submit, or accepted from the client via
// X-Request-Id), travels through context.Context while the message is
// in flight, and is persisted in the mq envelope so it survives the
// queue hop and WAL replay. Every structured log line about the
// message carries the same ID, which is what makes a single tweet's
// path through dispatcher → worker → integration lane reconstructable
// from logs at traffic scale.

// traceKey is the context key for the trace ID.
type traceKey struct{}

// NewTraceID returns a fresh 16-hex-digit random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// constant rather than panicking on a diagnostics feature.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithTrace returns ctx carrying the given trace ID. Empty IDs are not
// stored.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// Trace returns the trace ID carried by ctx, or "".
func Trace(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// EnsureTrace returns ctx guaranteed to carry a trace ID, minting one
// if absent, plus the ID.
func EnsureTrace(ctx context.Context) (context.Context, string) {
	if id := Trace(ctx); id != "" {
		return ctx, id
	}
	id := NewTraceID()
	return WithTrace(ctx, id), id
}

// NewLogger builds a slog.Logger writing to w per the -log-format
// ("text" or "json") and -log-level ("debug", "info", "warn", "error")
// daemon flags. Unknown values fall back to text/info rather than
// failing startup over a logging knob.
func NewLogger(w io.Writer, format, level string) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		lvl = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if strings.EqualFold(format, "json") {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// LogfHandler adapts a legacy printf-style sink into a slog.Handler so
// components migrated to structured logging keep honoring
// WithLogger(func(format, args...)) options (tests pass t.Logf). Lines
// render as "msg key=value ..." at Info and above.
type LogfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

// NewLogfHandler wraps logf as a slog.Handler.
func NewLogfHandler(logf func(format string, args ...any)) *LogfHandler {
	return &LogfHandler{logf: logf}
}

// Enabled reports Info and above; the legacy sinks never asked for
// debug spam.
func (h *LogfHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= slog.LevelInfo
}

// Handle renders the record onto the wrapped logf.
func (h *LogfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	emit := func(a slog.Attr) {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Any())
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(func(a slog.Attr) bool {
		emit(a)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

// WithAttrs returns a handler that prefixes the given attrs.
func (h *LogfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	n := &LogfHandler{logf: h.logf}
	n.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return n
}

// WithGroup flattens groups — the legacy sink has no nesting.
func (h *LogfHandler) WithGroup(string) slog.Handler { return h }
