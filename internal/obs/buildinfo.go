package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// processStart anchors the uptime gauge.
var processStart = time.Now()

// init publishes the process identity metrics on the Default registry:
// a constant-1 neogeo_build_info gauge whose labels carry the module
// version and Go toolchain (the Prometheus idiom for joining version
// onto any other series), and a process uptime gauge sampled at scrape
// time.
func init() {
	defaultRegistry.Gauge(
		"neogeo_build_info",
		"build identity; constant 1 with version labels",
		"version", "goversion",
	).With(buildVersion(), runtime.Version()).Set(1)
	defaultRegistry.GaugeFunc(
		"neogeo_process_uptime_seconds",
		"seconds since the process started",
		func() float64 { return time.Since(processStart).Seconds() },
	)
}

// buildVersion resolves the module version stamped into the binary, or
// "dev" for local builds where the toolchain records "(devel)" or
// nothing.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
	}
	return "dev"
}
