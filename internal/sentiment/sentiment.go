// Package sentiment scores the attitude a message expresses towards an
// entity, producing the P(Positive)/P(Negative) distribution the paper's
// extraction templates carry in their User_Attitude field. It is a
// lexicon-based analyser with negation, intensifier and informality
// handling (elongations and "!!!" runs amplify, emoticons count).
package sentiment

import (
	"math"
	"strings"

	"repro/internal/text"
	"repro/internal/uncertain"
)

// polarity lexicon: word -> valence in [-2, 2].
var lexicon = map[string]float64{
	// Positive.
	"good": 1, "great": 1.5, "nice": 1, "lovely": 1.5, "excellent": 2,
	"amazing": 2, "awesome": 2, "wonderful": 2, "fantastic": 2, "perfect": 2,
	"love": 1.5, "loved": 1.5, "like": 0.8, "liked": 0.8, "enjoy": 1,
	"enjoyed": 1, "clean": 1, "friendly": 1, "helpful": 1, "comfortable": 1,
	"cozy": 1, "cosy": 1, "impressed": 1.5, "recommend": 1.2, "recommended": 1.2,
	"cheap": 0.6, "affordable": 0.8, "spacious": 1, "quiet": 0.8,
	"beautiful": 1.5, "charming": 1.2, "best": 1.8, "well": 0.8,
	"fresh": 0.8, "tasty": 1.2, "delicious": 1.6, "safe": 0.8, "fine": 0.6,
	"happy": 1.2, "glad": 1, "thanks": 0.8, "sunny": 0.6, "smooth": 0.8,
	"fast": 0.6, "clear": 0.6, "open": 0.4,
	// Negative.
	"bad": -1, "terrible": -2, "horrible": -2, "awful": -2, "worst": -2,
	"hate": -1.8, "hated": -1.8, "dirty": -1.2, "noisy": -1, "rude": -1.4,
	"expensive": -0.8, "overpriced": -1.2, "broken": -1.2, "smelly": -1.4,
	"cold": -0.6, "grim": -1.2, "slow": -0.8, "crowded": -0.8,
	"disappointed": -1.5, "disappointing": -1.5, "avoid": -1.5, "scam": -2,
	"bedbugs": -2, "unsafe": -1.5, "dangerous": -1.5, "closed": -0.6,
	"blocked": -1, "jam": -1, "jammed": -1.2, "accident": -1.5,
	"flooded": -1.4, "stuck": -1.2, "delayed": -1, "cancelled": -1.2,
	"blight": -1.5, "locusts": -1.5, "drought": -1.5, "failed": -1.5,
	"sad": -1, "angry": -1.4, "never": -0.4, "problem": -1, "problems": -1,
	"leak": -1, "leaking": -1.2, "bland": -0.8, "poor": -1.2,
}

// negators flip the valence of the next few content words.
var negators = map[string]bool{
	"not": true, "no": true, "never": false, "nothing": true,
	"hardly": true, "barely": true, "cannot": true, "isnt": true,
	"wasnt": true, "dont": true, "didnt": true, "wont": true,
	"without": true, "lacks": true, "lacking": true,
}

// intensifiers scale the valence of the next sentiment word.
var intensifiers = map[string]float64{
	"very": 1.5, "really": 1.4, "so": 1.3, "extremely": 1.8,
	"absolutely": 1.7, "totally": 1.5, "super": 1.5, "quite": 1.2,
	"ridiculously": 1.8, "incredibly": 1.7, "pretty": 1.2, "too": 1.3,
}

// emoticonValence maps emoticon tokens to valence.
var emoticonValence = map[string]float64{
	":)": 1, ":-)": 1, "=)": 1, ":D": 1.5, ":-D": 1.5, ";)": 0.8,
	";-)": 0.8, "<3": 1.5, ":P": 0.5, ":-P": 0.5, "xD": 1.2, "XD": 1.2,
	":(": -1, ":-(": -1, "=(": -1, ":'(": -1.5, ":/": -0.6, ":-/": -0.6,
}

// offTopicScopes are subjects whose following sentiment word is discounted
// because it describes them rather than the reviewed entity.
var offTopicScopes = map[string]bool{
	"weather": true, "sky": true, "sun": true, "rain": true,
}

// collapseDoubles reduces every doubled-letter run to a single letter
// ("niice" -> "nice").
func collapseDoubles(w string) string {
	var sb strings.Builder
	var prev rune
	for _, r := range w {
		if r == prev {
			continue
		}
		sb.WriteRune(r)
		prev = r
	}
	return sb.String()
}

// Result is the outcome of analysing one message.
type Result struct {
	// Valence is the raw summed score; sign gives polarity.
	Valence float64
	// Attitude is the P(Positive)/P(Negative) distribution the extraction
	// template stores.
	Attitude *uncertain.Dist
	// Hits counts sentiment-bearing tokens found; zero means "no opinion
	// detected" and the distribution is uniform.
	Hits int
}

// Positive and Negative are the attitude alternative names.
const (
	Positive = "Positive"
	Negative = "Negative"
)

// Analyze scores a raw informal message.
func Analyze(msg string) Result {
	return AnalyzeTokens(text.Tokenize(msg))
}

// AnalyzeTokens scores an already-tokenised message.
func AnalyzeTokens(tokens []text.Token) Result {
	var valence float64
	hits := 0
	negation := 0  // countdown window of words affected by a negator
	boost := 1.0   // pending intensifier multiplier
	exclaim := 1.0 // message-level amplification from "!!!" runs
	elongSeen := false
	prevWord := ""

	for _, tok := range tokens {
		switch tok.Kind {
		case text.KindEmoticon:
			if v, ok := emoticonValence[tok.Text]; ok {
				valence += v
				hits++
			}
			continue
		case text.KindPunct:
			if strings.HasPrefix(tok.Text, "!") && len(tok.Text) >= 2 {
				exclaim = 1.25
			}
			if strings.ContainsAny(tok.Text, ".!?,;") {
				negation = 0
				boost = 1
			}
			continue
		case text.KindWord, text.KindHashtag:
			// fall through to word handling
		default:
			continue
		}
		w := strings.TrimPrefix(tok.Lower, "#")
		if text.IsElongated(w) {
			elongSeen = true
			w = text.CollapseElongation(w)
			// The collapse keeps doubled letters ("niiiice" -> "niice");
			// if that form is unknown, try singling every doubled run.
			if _, ok := lexicon[w]; !ok {
				if single := collapseDoubles(w); lexicon[single] != 0 || negators[single] || intensifiers[single] != 0 {
					w = single
				}
			}
		}
		if exp, ok := text.ExpandAbbreviation(w); ok && !strings.Contains(exp, " ") {
			w = exp
		}
		if negators[w] {
			negation = 3
			continue
		}
		if m, ok := intensifiers[w]; ok {
			boost = m
			continue
		}
		v, ok := lexicon[w]
		if !ok {
			if negation > 0 {
				negation--
			}
			prevWord = w
			continue
		}
		v *= boost
		boost = 1
		if negation > 0 {
			v = -v
			negation = 0
		}
		// Sentiment aimed at the weather is only weakly about the entity
		// under review ("nice enough, weather grim however" is still a
		// positive hotel report in the paper's Template 3).
		if offTopicScopes[prevWord] {
			v *= 0.5
		}
		valence += v
		hits++
		prevWord = w
	}

	valence *= exclaim
	if elongSeen && valence != 0 {
		valence *= 1.15
	}

	dist := uncertain.NewDist()
	if hits == 0 {
		_ = dist.Set(Positive, 0.5)
		_ = dist.Set(Negative, 0.5)
		return Result{Valence: 0, Attitude: dist, Hits: 0}
	}
	// Squash valence into P(Positive) with a logistic curve.
	pPos := 1 / (1 + math.Exp(-valence))
	_ = dist.Set(Positive, pPos)
	_ = dist.Set(Negative, 1-pPos)
	return Result{Valence: valence, Attitude: dist, Hits: hits}
}

// Polarity returns +1, -1 or 0 for a message, a convenience over Analyze.
func Polarity(msg string) int {
	r := Analyze(msg)
	switch {
	case r.Hits == 0 || r.Valence == 0:
		return 0
	case r.Valence > 0:
		return 1
	default:
		return -1
	}
}
