package sentiment

import (
	"math"
	"testing"
)

func TestPaperScenarioMessages(t *testing.T) {
	// The three Berlin messages of the paper's worked scenario all carry
	// P(Positive) > P(Negative).
	msgs := []string{
		"berlin has some nice hotels i just loved the hetero friendly love that word Axel Hotel in Berlin.",
		"Good morning Berlin. The sun is out!!!! Very impressed by the customer service at #movenpick hotel in berlin. Well done guys!",
		"In Berlin hotel room, nice enough, weather grim however",
	}
	for _, m := range msgs {
		r := Analyze(m)
		if r.Attitude.P(Positive) <= r.Attitude.P(Negative) {
			t.Errorf("message %q: P(Positive)=%v <= P(Negative)=%v",
				m, r.Attitude.P(Positive), r.Attitude.P(Negative))
		}
	}
}

func TestClearNegative(t *testing.T) {
	msgs := []string{
		"terrible hotel, dirty rooms and rude staff",
		"worst stay ever, avoid this place",
		"huge traffic jam after the accident, stuck for hours",
	}
	for _, m := range msgs {
		r := Analyze(m)
		if r.Attitude.P(Negative) <= r.Attitude.P(Positive) {
			t.Errorf("message %q not negative: %+v", m, r.Attitude.Normalized())
		}
	}
}

func TestNegationFlips(t *testing.T) {
	pos := Analyze("the room was clean")
	neg := Analyze("the room was not clean")
	if pos.Valence <= 0 {
		t.Fatalf("baseline valence = %v", pos.Valence)
	}
	if neg.Valence >= 0 {
		t.Errorf("negated valence = %v, want negative", neg.Valence)
	}
}

func TestNegationWindowCloses(t *testing.T) {
	// Negation must not leak across punctuation: "not far. lovely place"
	// keeps "lovely" positive.
	r := Analyze("not far. lovely place")
	if r.Valence <= 0 {
		t.Errorf("valence = %v, want positive (negation leaked)", r.Valence)
	}
}

func TestIntensifier(t *testing.T) {
	plain := Analyze("the staff was friendly")
	strong := Analyze("the staff was very friendly")
	if strong.Valence <= plain.Valence {
		t.Errorf("intensifier did not amplify: %v vs %v", strong.Valence, plain.Valence)
	}
}

func TestExclamationAmplifies(t *testing.T) {
	plain := Analyze("great hotel")
	excited := Analyze("great hotel !!!!")
	if excited.Valence <= plain.Valence {
		t.Errorf("exclamations did not amplify: %v vs %v", excited.Valence, plain.Valence)
	}
}

func TestElongationAmplifies(t *testing.T) {
	plain := Analyze("the view is nice")
	elong := Analyze("the view is niiiiice")
	if elong.Valence <= 0 {
		t.Errorf("elongated sentiment word missed: %v", elong.Valence)
	}
	if elong.Valence <= plain.Valence {
		t.Errorf("elongation did not amplify: %v vs %v", elong.Valence, plain.Valence)
	}
}

func TestEmoticons(t *testing.T) {
	if r := Analyze("the breakfast :)"); r.Valence <= 0 {
		t.Errorf("positive emoticon: %v", r.Valence)
	}
	if r := Analyze("the breakfast :("); r.Valence >= 0 {
		t.Errorf("negative emoticon: %v", r.Valence)
	}
}

func TestNeutralMessage(t *testing.T) {
	r := Analyze("the hotel is in berlin near the station")
	if r.Hits != 0 {
		t.Errorf("neutral message got %d hits", r.Hits)
	}
	if p := r.Attitude.P(Positive); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("neutral P(Positive) = %v, want 0.5", p)
	}
	if got := Polarity("the hotel is in berlin"); got != 0 {
		t.Errorf("neutral polarity = %d", got)
	}
}

func TestAttitudeDistributionSumsToOne(t *testing.T) {
	for _, m := range []string{"great", "awful", "hotel in berlin", "not bad", ""} {
		r := Analyze(m)
		sum := r.Attitude.P(Positive) + r.Attitude.P(Negative)
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("message %q: attitude sums to %v", m, sum)
		}
	}
}

func TestPolarity(t *testing.T) {
	if got := Polarity("wonderful stay"); got != 1 {
		t.Errorf("positive polarity = %d", got)
	}
	if got := Polarity("horrible stay"); got != -1 {
		t.Errorf("negative polarity = %d", got)
	}
}

func TestAbbreviatedSentiment(t *testing.T) {
	// "gd" expands to "good", "gr8" to "great".
	if r := Analyze("gr8 hotel pls visit"); r.Valence <= 0 {
		t.Errorf("gr8 not scored: %+v", r)
	}
	if r := Analyze("gd service here"); r.Valence <= 0 {
		t.Errorf("gd not scored: %+v", r)
	}
}
