// Command traffic demonstrates the motivation section's truck-driver
// scenario: drivers report road conditions by SMS; the system aggregates
// them into road reports with certainty factors, and other drivers query
// the current situation — including the effect of temporal decay, since
// "geographical information is dynamic information and always changing
// over time".
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	neogeo "repro"
)

func main() {
	now := time.Now()
	sys, err := neogeo.New(
		neogeo.WithGazetteerNames(2000),
		neogeo.WithGazetteerSeed(2011),
	)
	if err != nil {
		log.Fatalf("building system: %v", err)
	}
	defer sys.Close()

	ctx := context.Background()
	reports := []struct{ body, source string }{
		{"huge traffic jam in Nairobi after the accident, road blocked", "driver01"},
		{"still stuck in the jam in Nairobi, avoid the ring road", "driver02"},
		{"road near Lagos flooded, take the northern detour", "driver03"},
		{"traffic moving slowly past the checkpoint in Cairo", "driver04"},
		{"accident cleared in Cairo, road open again", "driver05"},
	}
	for _, r := range reports {
		out, err := sys.Ingest(ctx, r.body, r.source)
		if err != nil {
			log.Fatalf("ingest %q: %v", r.body, err)
		}
		fmt.Printf("%-9s -> domain=%-8s inserted=%d merged=%d\n",
			r.source, out.Domain, out.Inserted, out.Merged)
	}

	for _, q := range []string{
		"any traffic in Nairobi this morning?",
		"is the road near Lagos open?",
	} {
		answer, err := sys.Ask(ctx, q, "driver99")
		if err != nil {
			log.Fatalf("ask: %v", err)
		}
		fmt.Println("\nQ:", q)
		fmt.Println("A:", answer.Text)
	}

	// A week later, unconfirmed reports have decayed.
	later := now.Add(7 * 24 * time.Hour)
	decayed, deleted, err := sys.Decay(later, 0.05)
	if err != nil {
		log.Fatalf("decay: %v", err)
	}
	fmt.Printf("\nafter 7 days: %d reports decayed, %d dropped below the certainty floor\n",
		decayed, deleted)
}
