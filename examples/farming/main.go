// Command farming demonstrates the motivation section's farmers-community
// scenario: sharing pest sightings, market prices and weather by SMS —
// including heavily abbreviated, noisy messages — and querying the
// collective knowledge.
package main

import (
	"context"
	"fmt"
	"log"

	neogeo "repro"
)

func main() {
	sys, err := neogeo.New(
		neogeo.WithGazetteerNames(2000),
		neogeo.WithGazetteerSeed(2011),
	)
	if err != nil {
		log.Fatalf("building system: %v", err)
	}
	defer sys.Close()

	ctx := context.Background()
	reports := []struct{ body, source string }{
		{"locust swarm moving towards Nairobi, protect your maize", "farmer01"},
		{"maize prices up at the market in Nairobi today", "farmer02"},
		{"blight spotted on cassava fields near Lagos", "farmer03"},
		{"gd rains in Cairo, sowing beans 2moro", "farmer04"}, // noisy SMS
		{"coffee harvest sold at the market in Nairobi for a fair price", "farmer05"},
	}
	for _, r := range reports {
		out, err := sys.Ingest(ctx, r.body, r.source)
		if err != nil {
			log.Fatalf("ingest %q: %v", r.body, err)
		}
		fmt.Printf("%-9s -> domain=%-8s inserted=%d merged=%d\n",
			r.source, out.Domain, out.Inserted, out.Merged)
	}

	for _, q := range []string{
		"any locust sightings around Nairobi?",
		"how are maize prices at the market in Nairobi?",
	} {
		answer, err := sys.Ask(ctx, q, "farmer99")
		if err != nil {
			log.Fatalf("ask: %v", err)
		}
		fmt.Println("\nQ:", q)
		fmt.Println("A:", answer.Text)
	}

	st := sys.Stats()
	fmt.Printf("\nfield reports stored: %d\n", st.Collections["FarmReports"])
}
