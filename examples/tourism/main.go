// Command tourism replays the paper's worked scenario (§"Example of a
// possible scenario") through the public facade: the three Berlin tweets
// flow through the Modules Coordinator into extraction templates and the
// probabilistic database; the user's request is answered with the paper's
// expected sentence. The structured Answer exposes what the paper's
// figures show — the formulated topk query, the ranked records with their
// certainties and conditional probabilities, and the stored probabilistic
// XML itself.
package main

import (
	"context"
	"fmt"
	"log"

	neogeo "repro"
)

func main() {
	sys, err := neogeo.New(
		neogeo.WithGazetteerNames(2000),
		neogeo.WithGazetteerSeed(2011),
	)
	if err != nil {
		log.Fatalf("building system: %v", err)
	}
	defer sys.Close()

	ctx := context.Background()
	messages := []string{
		"berlin has some nice hotels i just loved the hetero friendly love that word Axel Hotel in Berlin.",
		"Good morning Berlin. The sun is out!!!! Very impressed by the customer service at #movenpick hotel in berlin. Well done guys!",
		"In Berlin hotel room, nice enough, weather grim however",
	}

	fmt.Println("=== Pipeline run ===")
	for i, m := range messages {
		out, err := sys.Ingest(ctx, m, fmt.Sprintf("user%d", i+1))
		if err != nil {
			log.Fatalf("ingest: %v", err)
		}
		fmt.Printf("message %d: type=%s inserted=%d merged=%d\n", i+1, out.Type, out.Inserted, out.Merged)
	}

	question := "Can anyone recommend a good, but not ridiculously expensive hotel right in the middle of Berlin?"
	ans, err := sys.Ask(ctx, question, "asker")
	if err != nil {
		log.Fatalf("ask: %v", err)
	}
	fmt.Println("\n=== Question answering ===")
	fmt.Println("Q:", question)
	fmt.Println("formulated query:", ans.Query)
	fmt.Println("A:", ans.Text)

	// The ranked records behind the sentence — certainty is the paper's
	// score($x), CondP the probability the where-clause holds.
	fmt.Println("\n=== Ranked results ===")
	for i, r := range ans.Results {
		fmt.Printf("%d. %-16s score=%.2f condP=%.2f", i+1, r.Fields["Hotel_Name"], r.Certainty, r.CondP)
		if r.Location != nil {
			fmt.Printf(" at (%.2f, %.2f)", r.Location.Lat, r.Location.Lon)
		}
		fmt.Println()
	}

	// Dump one stored probabilistic record to show the XML representation.
	if len(ans.Results) > 0 {
		fmt.Println("\n=== A stored probabilistic record ===")
		fmt.Println(ans.Results[0].XML)
	}
}
