// Command tourism replays the paper's worked scenario (§"Example of a
// possible scenario") verbatim: the three Berlin tweets flow through the
// Modules Coordinator into extraction templates and the probabilistic
// database; the user's request is answered with the paper's expected
// sentence. The extraction templates are printed in the paper's table
// layout so the run can be compared against the publication directly.
package main

import (
	"fmt"
	"log"
	"time"

	neogeo "repro"
	"repro/internal/extract"
	"repro/internal/pxml"
	"repro/internal/xmldb"
)

func main() {
	sys, err := neogeo.New(neogeo.Config{GazetteerNames: 2000, GazetteerSeed: 2011})
	if err != nil {
		log.Fatalf("building system: %v", err)
	}
	defer sys.Close()

	messages := []string{
		"berlin has some nice hotels i just loved the hetero friendly love that word Axel Hotel in Berlin.",
		"Good morning Berlin. The sun is out!!!! Very impressed by the customer service at #movenpick hotel in berlin. Well done guys!",
		"In Berlin hotel room, nice enough, weather grim however",
	}

	// Show the raw extraction templates first (the paper's Template 1-3
	// table), then push everything through the pipeline.
	fmt.Println("=== Extraction templates (paper page 17) ===")
	now := time.Now()
	for i, m := range messages {
		ex, err := sys.IE.Extract(m, fmt.Sprintf("user%d", i+1), now)
		if err != nil {
			log.Fatalf("extract: %v", err)
		}
		for _, tpl := range ex.Templates {
			fmt.Printf("\nTemplate %d\n", i+1)
			printField(tpl, "Hotel_Name")
			printField(tpl, "Location")
			printDist(tpl, "Country")
			printDist(tpl, "User_Attitude")
		}
	}

	fmt.Println("\n=== Pipeline run ===")
	for i, m := range messages {
		out, err := sys.Ingest(m, fmt.Sprintf("user%d", i+1))
		if err != nil {
			log.Fatalf("ingest: %v", err)
		}
		fmt.Printf("message %d: type=%s inserted=%d merged=%d\n", i+1, out.Type, out.Inserted, out.Merged)
	}

	question := "Can anyone recommend a good, but not ridiculously expensive hotel right in the middle of Berlin?"
	out, err := sys.Ingest(question, "asker")
	if err != nil {
		log.Fatalf("ask: %v", err)
	}
	fmt.Println("\n=== Question answering ===")
	fmt.Println("Q:", question)
	fmt.Println("formulated query:", out.Query)
	fmt.Println("A:", out.Answer)

	// Dump one stored probabilistic record to show the XML representation.
	fmt.Println("\n=== A stored probabilistic record ===")
	printFirstRecord(sys)
}

func printField(tpl extract.Template, name string) {
	if fv, ok := tpl.Fields[name]; ok {
		fmt.Printf("  %-14s %s\n", name, fv.Text)
	}
}

func printDist(tpl extract.Template, name string) {
	fv, ok := tpl.Fields[name]
	if !ok || fv.Dist == nil {
		return
	}
	fmt.Printf("  %-14s", name)
	for i, alt := range fv.Dist.Normalized() {
		if i > 0 {
			fmt.Print(" >")
		}
		fmt.Printf(" P(%s)=%.2f", alt.Name, alt.P)
	}
	fmt.Println()
}

func printFirstRecord(sys *neogeo.System) {
	sys.DB.Each("Hotels", func(rec *xmldb.Record) bool {
		s, err := pxml.Marshal(rec.Doc)
		if err != nil {
			return false
		}
		fmt.Printf("certainty=%.2f\n%s\n", float64(rec.Certainty), s)
		return false // first record only
	})
}
