// Example crisis demonstrates the paper's crisis-management motivation
// ("Many other applications in fields of health, urban utilities
// monitoring, and crisis management can be developed with our proposed
// system"): citizens report a flood situation by SMS, reports carry
// temporal expressions that date the observation rather than the arrival,
// a stale report arriving late does not clobber fresher state, and the
// accumulated knowledge survives a process restart via a database
// snapshot — here across a sharded store, whose snapshot stream carries
// one section per shard.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	neogeo "repro"
)

func main() {
	build := func() *neogeo.System {
		// The same gazetteer options on both sides of the restart:
		// synthesis is seeded, so the restarted process reconstructs the
		// identical toponym database the snapshot's records were resolved
		// against.
		sys, err := neogeo.New(
			neogeo.WithGazetteerNames(2000),
			neogeo.WithGazetteerSeed(2011),
			neogeo.WithShards(2),
		)
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}
	sys := build()
	defer sys.Close()

	ctx := context.Background()
	// A flood develops. Note the interleaved timing: the "flooded this
	// morning" report arrives AFTER the road has been reported clear —
	// a delayed SMS, exactly the ill-behaved arrival order the paper
	// warns about. Observation-time integration keeps the fresher fact.
	reports := []struct{ msg, from string }{
		{"road near Nairobi flooded this morning, take the detour", "driver-1"},
		{"huge traffic jam in Nairobi after the accident", "driver-2"},
		{"road near Nairobi clear now, water gone", "driver-3"},
		{"road near Nairobi flooded 4 hours ago", "driver-4 (delayed SMS)"},
	}
	for _, r := range reports {
		out, err := sys.Ingest(ctx, r.msg, r.from)
		if err != nil {
			log.Fatalf("ingest %q: %v", r.msg, err)
		}
		fmt.Printf("%-28s -> type=%s domain=%s inserted=%d merged=%d\n",
			r.from, out.Type, out.Domain, out.Inserted, out.Merged)
	}

	answer, err := sys.Ask(ctx, "is the road to Nairobi open?", "dispatcher")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndispatcher asks: is the road to Nairobi open?\n%s\n", answer.Text)

	// Snapshot the knowledge, simulate a restart, restore, ask again.
	var img bytes.Buffer
	if err := sys.Snapshot(&img); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot: %d bytes across %d shards\n", img.Len(), sys.Stats().Shards)

	restarted := build()
	defer restarted.Close()
	if err := restarted.Restore(&img); err != nil {
		log.Fatal(err)
	}
	answer2, err := restarted.Ask(ctx, "is the road to Nairobi open?", "dispatcher")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after restart, same question:\n%s\n", answer2.Text)
}
