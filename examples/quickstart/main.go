// Command quickstart is the smallest useful program against the public
// API: build a system, ingest a handful of informal messages, ask a
// question, and print the structured answer and system statistics.
package main

import (
	"context"
	"fmt"
	"log"

	neogeo "repro"
)

func main() {
	sys, err := neogeo.New(
		neogeo.WithGazetteerNames(2000),
		neogeo.WithGazetteerSeed(2011),
	)
	if err != nil {
		log.Fatalf("building system: %v", err)
	}
	defer sys.Close()

	ctx := context.Background()
	messages := []struct{ body, source string }{
		{"loved the Axel Hotel in Berlin, great stay and friendly staff", "maria"},
		{"very impressed by the service at #movenpick hotel in berlin", "ahmed"},
		{"terrible night at the Grand Plaza Hotel in Berlin, noisy and dirty", "li"},
		{"gr8 breakfast at the axel hotel in berlin, pls visit", "tomas"},
	}
	for _, m := range messages {
		out, err := sys.Ingest(ctx, m.body, m.source)
		if err != nil {
			log.Fatalf("ingest: %v", err)
		}
		fmt.Printf("ingested %-8s -> type=%s domain=%s inserted=%d merged=%d\n",
			m.source, out.Type, out.Domain, out.Inserted, out.Merged)
	}

	answer, err := sys.Ask(ctx, "can anyone recommend a good hotel in Berlin?", "guest")
	if err != nil {
		log.Fatalf("ask: %v", err)
	}
	fmt.Println()
	fmt.Println("Q: can anyone recommend a good hotel in Berlin?")
	fmt.Println("A:", answer.Text)
	for _, r := range answer.Results {
		fmt.Printf("   %-24s certainty=%.2f\n", r.Fields["Hotel_Name"], r.Certainty)
	}

	st := sys.Stats()
	fmt.Println()
	fmt.Printf("gazetteer: %d references across %d names\n", st.GazetteerEntries, st.GazetteerNames)
	for coll, n := range st.Collections {
		fmt.Printf("collection %s: %d records\n", coll, n)
	}
}
