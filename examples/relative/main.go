// Example relative demonstrates grounding vague spatial references, the
// paper's research question RQ2d: "How to infer about the referred location
// from relative references (like: 'north of', 'in vicinity of')?"
//
// It replays the paper's own example message —
//
//	"Fox Sports Grill is a few blocks north of your hotel, Lola is next
//	 to the restaurant, McCormick & Schmicks is a few blocks west"
//
// — parsing each relation phrase into a fuzzy region anchored at a known
// point, then collapsing the region to a concrete location estimate with an
// explicit uncertainty radius, exactly the "representing and reasoning with
// uncertain and incomplete information" the paper calls for.
package main

import (
	"fmt"
	"log"

	"repro/internal/disambig"
	"repro/internal/geo"
	"repro/internal/ner"
	"repro/internal/text"
)

func main() {
	msg := "Fox Sports Grill is a few blocks north of your hotel, " +
		"Lola is next to the restaurant, McCormick & Schmicks is a few blocks west"

	// The anchor: the hotel the message is relative to. In the full
	// pipeline this comes from disambiguation; here we pin it so the
	// grounding arithmetic is inspectable (downtown Seattle).
	hotel, err := geo.NewPoint(47.6097, -122.3331)
	if err != nil {
		log.Fatal(err)
	}

	tokens := text.Tokenize(msg)
	relations := ner.ParseRelations(tokens)
	if len(relations) == 0 {
		log.Fatal("no spatial relations parsed")
	}

	fmt.Printf("message: %s\n", msg)
	fmt.Printf("anchor (your hotel): %.4f, %.4f\n\n", hotel.Lat, hotel.Lon)

	for i, rel := range relations {
		fmt.Printf("relation %d: kind=%s fuzzy=%t", i+1, rel.Kind, rel.Fuzzy)
		if rel.Kind == ner.RelDirectional {
			fmt.Printf(" bearing=%.0f° (%s)", rel.Direction, geo.CardinalDirection(rel.Direction))
		}
		if rel.DistanceMeters > 0 {
			fmt.Printf(" distance≈%.0fm", rel.DistanceMeters)
		}
		if rel.Object != "" {
			fmt.Printf(" object=%q", rel.Object)
		}
		fmt.Println()

		region := rel.RegionFor(hotel)
		est, radius, ok := disambig.GroundRelative(region)
		if !ok {
			fmt.Println("  could not ground this relation")
			continue
		}
		fmt.Printf("  grounded estimate: %.4f, %.4f (±%.0f m)\n", est.Lat, est.Lon, radius)

		// Show the fuzziness itself: membership at the estimate, at the
		// anchor, and well outside the region.
		far, _ := geo.NewPoint(est.Lat+1.0, est.Lon)
		fmt.Printf("  membership: at estimate %.2f, at anchor %.2f, 110 km away %.2f\n\n",
			region.Membership(est), region.Membership(hotel), region.Membership(far))
	}

	// Intersecting two vague descriptions narrows the candidate area —
	// the inference the paper sketches for "guessing the hotel" from
	// multiple clues.
	north := ner.Relation{Kind: ner.RelDirectional, Direction: 0, Fuzzy: true}
	near := ner.Relation{Kind: ner.RelDistance, DistanceMeters: 800, Fuzzy: true}
	both := geo.IntersectRegions{north.RegionFor(hotel), near.RegionFor(hotel)}
	est, radius, ok := disambig.GroundRelative(both)
	if !ok {
		log.Fatal("could not ground intersected region")
	}
	fmt.Println("combining clues: \"north of the hotel\" ∩ \"within ~800 m\"")
	fmt.Printf("  joint estimate: %.4f, %.4f (±%.0f m)\n", est.Lat, est.Lon, radius)
}
