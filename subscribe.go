package neogeo

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/readpath"
)

// Subscription is a standing query: a continuous predicate over the
// records that integration and feedback commit, registered once and
// streamed until cancelled. Exactly one of Key or Center selects the
// matching axis; Collection optionally restricts to one record type.
type Subscription struct {
	// Collection restricts matches to one collection, e.g. "Hotels"
	// (empty: any).
	Collection string
	// Key subscribes to one entity by name (e.g. "Hotel Sierra"),
	// matched under the same normalization duplicate detection uses.
	Key string
	// Center and RadiusMeters geofence the subscription: located
	// records within the circle match. RadiusMeters must be positive
	// when Center is set.
	Center       *Location
	RadiusMeters float64
}

// SubscriptionEvent is one matching write, projected exactly as answer
// results are: certainty and the most likely value per field, with
// provenance stripped.
type SubscriptionEvent struct {
	// Seq orders events broker-wide; consumers see gaps where other
	// subscriptions matched or their own buffer overflowed.
	Seq int64
	// Action is what the write did: "inserted", "merged", "confirmed",
	// "rejected" or "corrected".
	Action string
	// Collection and RecordID identify the record.
	Collection string
	RecordID   int64
	// Certainty is the record's certainty after the write.
	Certainty float64
	// Location is the record's resolved position after the write, nil
	// when none.
	Location *Location
	// Fields maps the record's top-level fields to their most likely
	// value.
	Fields map[string]string
	// At is the write's timestamp.
	At time.Time
}

// Subscribe registers a standing query and returns its ID. The
// subscription starts matching committed writes immediately; events
// buffer (bounded, oldest dropped first) until a consumer attaches with
// OpenSubscription.
func (s *System) Subscribe(ctx context.Context, sub Subscription) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	spec := readpath.Subscription{
		Collection:   sub.Collection,
		Key:          sub.Key,
		RadiusMeters: sub.RadiusMeters,
	}
	if sub.Center != nil {
		spec.Center = &geo.Point{Lat: sub.Center.Lat, Lon: sub.Center.Lon}
	}
	id, err := s.sys.Subscribe(spec)
	if err != nil {
		return "", mapSubscribeErr(err)
	}
	return id, nil
}

// Unsubscribe cancels a standing query; an open stream observes
// ErrSubscriptionClosed on its next read.
func (s *System) Unsubscribe(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return mapSubscribeErr(s.sys.Unsubscribe(id))
}

// OpenSubscription claims a subscription's event stream. Each
// subscription streams to exactly one consumer at a time: a second open
// fails with ErrStreamBusy until the first stream is closed. Close the
// stream when done; the subscription itself stays registered (and keeps
// buffering) until Unsubscribe.
func (s *System) OpenSubscription(ctx context.Context, id string) (*SubscriptionStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ch, release, err := s.sys.AttachSubscription(id)
	if err != nil {
		return nil, mapSubscribeErr(err)
	}
	return &SubscriptionStream{ch: ch, release: release}, nil
}

// SubscriptionStream is one consumer's view of a standing query's
// events. It is a single-consumer object: call Next from one goroutine.
type SubscriptionStream struct {
	ch      <-chan readpath.Event
	release func()
}

// Next blocks for the subscription's next event. It fails with ctx's
// error when the context expires first — serving layers use a short
// per-call timeout to interleave heartbeats — and with
// ErrSubscriptionClosed once the subscription is cancelled or the
// system shuts down.
func (st *SubscriptionStream) Next(ctx context.Context) (SubscriptionEvent, error) {
	select {
	case ev, ok := <-st.ch:
		if !ok {
			return SubscriptionEvent{}, ErrSubscriptionClosed
		}
		pub := SubscriptionEvent{
			Seq:        ev.Seq,
			Action:     ev.Action,
			Collection: ev.Collection,
			RecordID:   ev.RecordID,
			Certainty:  ev.Certainty,
			Fields:     ev.Fields,
			At:         ev.At,
		}
		if ev.Location != nil {
			pub.Location = &Location{Lat: ev.Location.Lat, Lon: ev.Location.Lon}
		}
		return pub, nil
	case <-ctx.Done():
		return SubscriptionEvent{}, ctx.Err()
	}
}

// Close releases the stream so another consumer can open the
// subscription. It does not cancel the subscription.
func (st *SubscriptionStream) Close() {
	if st.release != nil {
		st.release()
		st.release = nil
	}
}

// mapSubscribeErr rewrites the broker's typed conditions onto the
// facade's sentinels so callers never import internal packages.
func mapSubscribeErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, readpath.ErrUnknownSubscription):
		return ErrUnknownSubscription
	case errors.Is(err, readpath.ErrStreamBusy):
		return ErrStreamBusy
	case errors.Is(err, readpath.ErrBrokerClosed):
		return ErrSubscriptionClosed
	case errors.Is(err, readpath.ErrInvalidSubscription):
		return fmt.Errorf("%w: %v", ErrInvalidSubscription, err)
	}
	return err
}
