package neogeo

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/feedback"
)

// Verdict is a user's judgement of one answer result — the paper's
// "user feedback on query answers", the mechanism that drives the
// store's uncertainty down over time.
type Verdict string

// Verdicts.
const (
	// VerdictConfirm corroborates the result: the record's certainty
	// rises, its contributing sources gain reliability, and its resolved
	// gazetteer interpretation is reinforced so future ambiguous
	// mentions lean the same way.
	VerdictConfirm Verdict = "confirm"
	// VerdictReject disputes the result: certainty falls and the
	// contributing sources lose reliability.
	VerdictReject Verdict = "reject"
	// VerdictCorrect replaces a field value or the record's location.
	VerdictCorrect Verdict = "correct"
)

// Feedback is one verdict about one answer result.
type Feedback struct {
	// RecordID is the record the answer exposed (Result.ID).
	RecordID int64
	// Verdict is the judgement.
	Verdict Verdict
	// Field and Value carry a correction's replacement field value
	// (VerdictCorrect only).
	Field string
	Value string
	// Location carries a correction's replacement location
	// (VerdictCorrect only).
	Location *Location
	// Source identifies the user giving feedback; their learned
	// reliability weights the evidence the verdict contributes.
	Source string
}

// FeedbackReceipt acknowledges an accepted verdict.
type FeedbackReceipt struct {
	// Seq is the verdict's sequence number in the feedback ledger.
	Seq int64
}

// FeedbackStats is the feedback subsystem's counters snapshot.
type FeedbackStats struct {
	// Accepted counts verdicts accepted into the ledger by this process;
	// Replayed counts ledger entries recovered at boot.
	Accepted int64
	Replayed int64
	// Applied counts verdicts whose effects reached the store, broken
	// down by kind in Confirmed/Rejected/Corrected.
	Applied   int64
	Confirmed int64
	Rejected  int64
	Corrected int64
	// Pending is the number of buffered verdicts awaiting a batched
	// apply; Deferred the subset parked until recovery re-integrates
	// their record.
	Pending  int
	Deferred int
	// DroppedStale counts verdicts whose record was deleted between
	// accept and apply.
	DroppedStale int64
}

// DecayStats is the certainty-ageing totals snapshot.
type DecayStats struct {
	// Runs counts decay passes; Decayed and Deleted total the records
	// aged and dropped across them.
	Runs    int64
	Decayed int64
	Deleted int64
}

// Feedback accepts a user verdict about an answer result and returns
// once it is durably logged (when the system has a data directory) and
// routed to its record's home shard. The apply is asynchronous and
// batched: certainty, source reliability and disambiguation priors
// update on the next flush — FlushFeedback, the serving layer's
// background loop, or automatically once the shard's buffer holds a
// full batch (WithFeedbackBatch).
//
// Failure conditions are typed: ErrUnknownRecord for a record ID that
// was never allocated, ErrStaleAnswer for a record deleted since the
// answer was generated, ErrInvalidFeedback for a malformed verdict.
func (s *System) Feedback(ctx context.Context, fb Feedback) (FeedbackReceipt, error) {
	if err := ctx.Err(); err != nil {
		return FeedbackReceipt{}, err
	}
	v := feedback.Verdict{
		RecordID: fb.RecordID,
		Kind:     feedback.Kind(fb.Verdict),
		Field:    fb.Field,
		Value:    fb.Value,
		Source:   fb.Source,
	}
	if fb.Location != nil {
		lat, lon := fb.Location.Lat, fb.Location.Lon
		v.Lat, v.Lon = &lat, &lon
	}
	seq, err := s.sys.SubmitFeedback(v)
	if err != nil {
		return FeedbackReceipt{}, mapFeedbackErr(err)
	}
	return FeedbackReceipt{Seq: seq}, nil
}

// FlushFeedback applies every buffered verdict now — one amortized
// database batch per home shard, shards in parallel — and returns how
// many were applied. Interactive callers use it to observe their own
// feedback immediately; serving deployments rely on the background
// loop instead.
func (s *System) FlushFeedback(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return s.sys.FlushFeedback(), nil
}

// mapFeedbackErr rewrites the engine's typed conditions onto the
// facade's sentinels so callers never import internal packages.
func mapFeedbackErr(err error) error {
	switch {
	case errors.Is(err, feedback.ErrUnknownRecord):
		return fmt.Errorf("%w: %v", ErrUnknownRecord, err)
	case errors.Is(err, feedback.ErrStaleAnswer):
		return fmt.Errorf("%w: %v", ErrStaleAnswer, err)
	case errors.Is(err, feedback.ErrInvalidVerdict):
		return fmt.Errorf("%w: %v", ErrInvalidFeedback, err)
	}
	return err
}
