package neogeo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// The crash-recovery differential tests pin the durability subsystem's
// contract: a process killed without warning (no Close, no final
// checkpoint — the SIGKILL equivalent) restarts into a system that
// answers identically to one that never crashed. Recovery restores the
// newest valid checkpoint, then the queue WAL replays every message
// acknowledged after that image for idempotent re-integration.

// crashMessages report distinct hotels so the runs are deterministic
// end to end: every integration is an insert, so no trust feedback or
// certainty reinforcement can diverge between a control run and a
// recovered one.
var crashMessages = []string{
	"wonderful stay at the Hotel Aurora Prime in Berlin, lovely place",
	"loved the Hotel Borealis Grand in Berlin, great stay",
	"very impressed by the Hotel Cascade Royal in Berlin, well done",
	"the Hotel Dorint Vista in Berlin was a delight",
	"great night at the Hotel Elysium Park in Berlin",
	"the Hotel Fontana Plaza in Berlin exceeded expectations",
}

const crashQuestion = "can anyone recommend a good hotel in Berlin?"

// buildDurable builds the deterministic system-under-test: fixed
// gazetteer, one worker (queue-order processing, stable record IDs),
// fixed clock, two shards, durable queue + store.
func buildDurable(t *testing.T, dataDir, wal string) *System {
	t.Helper()
	opts := []Option{
		WithGazetteerNames(500),
		WithGazetteerSeed(2011),
		WithWorkers(1),
		WithShards(2),
		WithClock(func() time.Time { return time.Date(2011, 4, 1, 9, 0, 0, 0, time.UTC) }),
	}
	if dataDir != "" {
		opts = append(opts, WithDataDir(dataDir))
	}
	if wal != "" {
		opts = append(opts, WithQueueWAL(wal))
	}
	sys, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// submitAndDrain pushes messages through the pipeline to acknowledgement.
func submitAndDrain(t *testing.T, sys *System, messages []string) {
	t.Helper()
	ctx := context.Background()
	for i, m := range messages {
		if _, err := sys.Submit(ctx, m, fmt.Sprintf("user%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, err := range sys.Drain(ctx, 0) {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// askEqual asserts two systems answer the question identically: the
// generated text and formulated query byte for byte, and the ranked
// results record by record — same IDs, same order, same fields and
// locations, certainties equal to within one part in 10⁹. (Exact float
// equality is unattainable even between two uninterrupted runs: summing
// candidate weights in map order perturbs the last ulp.)
func askEqual(t *testing.T, want, got *System) {
	t.Helper()
	ctx := context.Background()
	wa, err := want.Ask(ctx, crashQuestion, "asker")
	if err != nil {
		t.Fatal(err)
	}
	ga, err := got.Ask(ctx, crashQuestion, "asker")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(wa.Text), "hotel") {
		t.Fatalf("control answer is empty of hotels: %q", wa.Text)
	}
	if ga.Text != wa.Text || ga.Query != wa.Query {
		t.Errorf("recovered answer diverges:\n control:   %s\n recovered: %s", wa.Text, ga.Text)
	}
	if len(ga.Results) != len(wa.Results) {
		t.Fatalf("recovered ranks %d results, control %d", len(ga.Results), len(wa.Results))
	}
	const tol = 1e-9
	for i := range wa.Results {
		w, g := wa.Results[i], ga.Results[i]
		if g.ID != w.ID {
			t.Errorf("result #%d: record %d, control ranks %d", i, g.ID, w.ID)
			continue
		}
		if math.Abs(g.Certainty-w.Certainty) > tol || math.Abs(g.CondP-w.CondP) > tol {
			t.Errorf("result #%d (record %d): scores %v/%v, control %v/%v",
				i, g.ID, g.Certainty, g.CondP, w.Certainty, w.CondP)
		}
		if !reflect.DeepEqual(g.Fields, w.Fields) {
			t.Errorf("result #%d (record %d): fields %v, control %v", i, g.ID, g.Fields, w.Fields)
		}
		if (g.Location == nil) != (w.Location == nil) ||
			(g.Location != nil && *g.Location != *w.Location) {
			t.Errorf("result #%d (record %d): location %v, control %v", i, g.ID, g.Location, w.Location)
		}
	}
}

// TestCrashRecoveryEquivalence is the tentpole differential: checkpoint
// mid-stream, keep draining (acks land after the checkpoint LSN), kill
// the process without a final checkpoint, recover — the checkpointed
// half restores from the image, the post-checkpoint half replays from
// the queue WAL, and the result answers identically to a run that never
// crashed.
func TestCrashRecoveryEquivalence(t *testing.T) {
	control := buildDurable(t, "", "")
	defer control.Close()
	submitAndDrain(t, control, crashMessages)

	dir := t.TempDir()
	dataDir, wal := filepath.Join(dir, "data"), filepath.Join(dir, "queue.wal")
	crashed := buildDurable(t, dataDir, wal)
	submitAndDrain(t, crashed, crashMessages[:3])
	if _, err := crashed.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	submitAndDrain(t, crashed, crashMessages[3:])
	// SIGKILL: no Close, no final checkpoint — the process just stops.

	recovered := buildDurable(t, dataDir, wal)
	defer recovered.Close()
	// The three messages acknowledged after the checkpoint are pending
	// again; the first three are inside the restored image and are not.
	if st := recovered.Stats(); st.Queue.Pending != 3 {
		t.Fatalf("pending after recovery = %d, want 3 (stats %+v)", st.Queue.Pending, st.Queue)
	}
	submitAndDrain(t, recovered, nil) // drain the replayed messages
	if st := recovered.Stats(); st.Collections["Hotels"] != len(crashMessages) {
		t.Fatalf("Hotels = %d after recovery, want %d", st.Collections["Hotels"], len(crashMessages))
	}
	askEqual(t, control, recovered)
}

// TestCrashRecoveryWithoutCheckpoint: a crash before any checkpoint was
// written must lose nothing either — the entire store rebuilds from the
// queue WAL's acknowledged messages.
func TestCrashRecoveryWithoutCheckpoint(t *testing.T) {
	control := buildDurable(t, "", "")
	defer control.Close()
	submitAndDrain(t, control, crashMessages)

	dir := t.TempDir()
	dataDir, wal := filepath.Join(dir, "data"), filepath.Join(dir, "queue.wal")
	crashed := buildDurable(t, dataDir, wal)
	submitAndDrain(t, crashed, crashMessages)
	// SIGKILL before the first checkpoint ever ran.

	recovered := buildDurable(t, dataDir, wal)
	defer recovered.Close()
	if st := recovered.Stats(); st.Queue.Pending != len(crashMessages) {
		t.Fatalf("pending after recovery = %d, want all %d replayed", st.Queue.Pending, len(crashMessages))
	}
	submitAndDrain(t, recovered, nil)
	askEqual(t, control, recovered)
}

// TestCrashRecoveryMergesReplayedDuplicate: a message integrated into
// the checkpoint image whose duplicate arrives after it replays as a
// merge into the restored record, not as a second record — the
// idempotence the recovery path rests on.
func TestCrashRecoveryMergesReplayedDuplicate(t *testing.T) {
	report := crashMessages[0]
	control := buildDurable(t, "", "")
	defer control.Close()
	// Two separate passes so the control's sources match the crashed
	// run's (submitAndDrain numbers sources per call): the recovered
	// record's provenance trace must equal the control's byte for byte.
	submitAndDrain(t, control, []string{report})
	submitAndDrain(t, control, []string{report})

	dir := t.TempDir()
	dataDir, wal := filepath.Join(dir, "data"), filepath.Join(dir, "queue.wal")
	crashed := buildDurable(t, dataDir, wal)
	submitAndDrain(t, crashed, []string{report})
	if _, err := crashed.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	submitAndDrain(t, crashed, []string{report})
	// SIGKILL.

	recovered := buildDurable(t, dataDir, wal)
	defer recovered.Close()
	submitAndDrain(t, recovered, nil)
	if st := recovered.Stats(); st.Collections["Hotels"] != 1 {
		t.Fatalf("Hotels = %d after duplicate replay, want 1 merged record", st.Collections["Hotels"])
	}
	askEqual(t, control, recovered)
}

// TestGracefulShutdownRecovery: checkpoint-then-Close (the daemon's
// ordered shutdown) restarts into a system with nothing left to replay.
func TestGracefulShutdownRecovery(t *testing.T) {
	dir := t.TempDir()
	dataDir, wal := filepath.Join(dir, "data"), filepath.Join(dir, "queue.wal")
	sys := buildDurable(t, dataDir, wal)
	submitAndDrain(t, sys, crashMessages)
	if _, err := sys.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	restarted := buildDurable(t, dataDir, wal)
	defer restarted.Close()
	st := restarted.Stats()
	if st.Queue.Pending != 0 {
		t.Fatalf("pending after graceful restart = %d, want 0", st.Queue.Pending)
	}
	if st.Collections["Hotels"] != len(crashMessages) {
		t.Fatalf("Hotels = %d, want %d from the checkpoint alone", st.Collections["Hotels"], len(crashMessages))
	}
	if !st.Checkpoint.Enabled || st.Checkpoint.LastSeq == 0 {
		t.Fatalf("checkpoint stats after recovery = %+v", st.Checkpoint)
	}
	ans, err := restarted.Ask(context.Background(), crashQuestion, "asker")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(ans.Text), "hotel") {
		t.Errorf("restarted system answers %q", ans.Text)
	}
}

// TestCheckpointRequiresDataDir: the facade's sentinel for a checkpoint
// with nowhere to go.
func TestCheckpointRequiresDataDir(t *testing.T) {
	sys := buildDurable(t, "", "")
	defer sys.Close()
	if _, err := sys.Checkpoint(context.Background()); !errors.Is(err, ErrNoDataDir) {
		t.Fatalf("Checkpoint without data dir = %v, want ErrNoDataDir", err)
	}
	st := sys.Stats()
	if st.Checkpoint.Enabled {
		t.Fatalf("checkpoint stats claim enabled: %+v", st.Checkpoint)
	}
}

// TestCheckpointStatsAdvance: each checkpoint bumps the count and
// sequence surfaced through Stats.
func TestCheckpointStatsAdvance(t *testing.T) {
	sys := buildDurable(t, t.TempDir(), "")
	defer sys.Close()
	submitAndDrain(t, sys, crashMessages[:1])
	for i := 1; i <= 2; i++ {
		info, err := sys.Checkpoint(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if info.Seq != uint64(i) || info.Bytes == 0 {
			t.Fatalf("checkpoint #%d info = %+v", i, info)
		}
	}
	st := sys.Stats().Checkpoint
	if !st.Enabled || st.Count != 2 || st.LastSeq != 2 || st.LastBytes == 0 {
		t.Fatalf("checkpoint stats = %+v", st)
	}
}
