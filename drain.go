package neogeo

import (
	"context"
	"iter"
	"sync"

	"repro/internal/coordinator"
)

// Drain processes queued messages through the concurrent pipeline —
// dispatcher, worker pool (WithWorkers), one integration lane per shard —
// until the queue is empty, limit messages have been dispatched
// (limit <= 0 means no limit), or ctx is cancelled.
//
// The result is a streaming iterator: each finished message yields
// exactly one (outcome, nil) or (nil, error) pair as the pipeline
// completes it, in completion order, so a million-message drain never
// buffers every outcome in memory. Breaking out of the loop cancels the
// drain; messages already dispatched into the pipeline complete (and are
// acknowledged) with their outcomes discarded, undispatched ones stay
// pending for the next drain — no message is lost or stranded in flight.
// Failed messages are negatively acknowledged for redelivery and
// dead-letter after the queue's attempt limit, surfacing here as errors.
func (s *System) Drain(ctx context.Context, limit int) iter.Seq2[*Outcome, error] {
	return func(yield func(*Outcome, error) bool) {
		ctx, cancel := context.WithCancel(ctx)
		// halt releases the pipeline: the dispatcher stops on the
		// cancelled ctx, and any emit blocked on the results channel
		// unblocks on the closed stop channel (its outcome is dropped).
		stop := make(chan struct{})
		var once sync.Once
		halt := func() {
			once.Do(func() {
				cancel()
				close(stop)
			})
		}

		type item struct {
			out *coordinator.Outcome
			err error
		}
		results := make(chan item)
		go func() {
			defer close(results)
			s.sys.ProcessEach(ctx, limit, func(out *coordinator.Outcome, err error) {
				select {
				case results <- item{out: out, err: err}:
				case <-stop:
				}
			})
		}()

		// On any exit — normal completion, break, or a panic/Goexit in
		// the consumer's loop body — halt the pipeline and consume the
		// channel until the producer closes it, so the drain goroutines
		// never leak and every dispatched message still reaches its
		// lane's group commit. Deferred LIFO: halt runs first, then the
		// drain-off.
		defer func() {
			for range results {
			}
		}()
		defer halt()

		for it := range results {
			if !yield(publicOutcome(it.out), it.err) {
				return
			}
		}
	}
}
