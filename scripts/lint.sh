#!/usr/bin/env sh
# Build cmd/neogeolint and run the project-invariant analyzer suite
# over the whole module. Exits nonzero when any finding is reported, so
# both CI and the smoke preflight can gate on it. Findings print to
# stdout in file:line:col form.
#
#   LINT_ARTIFACT=out.json  write the findings JSON to out.json even
#                           when the tree is clean (CI uploads it on
#                           every run, not just red ones)
#   LINT_BASELINE=base.json suppress findings already recorded in
#                           base.json; fail only on new ones
#   LINT_FLAGS=...          extra flags passed through verbatim
set -eu

cd "$(dirname "$0")/.."

BIN="${NEOGEOLINT_BIN:-$(mktemp -d)/neogeolint}"
go build -o "$BIN" ./cmd/neogeolint

set -- ${LINT_FLAGS:-}
if [ -n "${LINT_ARTIFACT:-}" ]; then
  set -- "$@" -artifact "$LINT_ARTIFACT"
fi
if [ -n "${LINT_BASELINE:-}" ]; then
  set -- "$@" -baseline "$LINT_BASELINE"
fi

exec "$BIN" "$@" ./...
