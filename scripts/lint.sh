#!/usr/bin/env sh
# Build cmd/neogeolint and run the project-invariant analyzer suite
# over the whole module. Exits nonzero when any finding is reported, so
# both CI and the smoke preflight can gate on it. Findings print to
# stdout in file:line:col form; pass extra args (e.g. -json out.json)
# through via LINT_FLAGS.
set -eu

cd "$(dirname "$0")/.."

BIN="${NEOGEOLINT_BIN:-$(mktemp -d)/neogeolint}"
go build -o "$BIN" ./cmd/neogeolint

exec "$BIN" ${LINT_FLAGS:-} ./...
