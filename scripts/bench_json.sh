#!/usr/bin/env sh
# Convert `go test -bench` text output into a JSON array so CI can
# publish the benchmark smoke step's results as an artifact and the
# perf trajectory can be tracked across PRs.
#
#   sh scripts/bench_json.sh bench-smoke.out BENCH_7.json
#
# Each benchmark line becomes {"name", "iterations", "<unit>": value}
# with every reported metric (ns/op, B/op, msgs/sec, ...) keyed by its
# unit string.
set -eu

in=${1:?usage: bench_json.sh <bench-output> <out.json>}
out=${2:?usage: bench_json.sh <bench-output> <out.json>}

awk '
BEGIN { n = 0; print "[" }
$1 ~ /^Benchmark/ && NF >= 4 {
  name = $1
  iters = $2
  metrics = ""
  for (i = 3; i + 1 <= NF; i += 2) {
    val = $i
    unit = $(i + 1)
    gsub(/"/, "", unit)
    if (metrics != "") metrics = metrics ", "
    metrics = metrics sprintf("\"%s\": %s", unit, val)
  }
  if (n++) printf ",\n"
  printf "  {\"name\": \"%s\", \"iterations\": %s, %s}", name, iters, metrics
}
END {
  if (n) printf "\n"
  print "]"
}
' "$in" >"$out"

# Fail loudly if nothing parsed: an empty artifact means the bench step
# silently changed its output format.
grep -q '"name"' "$out" || { echo "bench_json.sh: no benchmark lines parsed from $in" >&2; exit 1; }
