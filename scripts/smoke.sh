#!/usr/bin/env sh
# End-to-end HTTP smoke test: build neogeod, start it, submit one report
# and one question over the API, and assert the answer names the hotel
# the report was about. Exercises the full submit -> background drain ->
# ask -> stats path a deployment depends on.
set -eu

ADDR="127.0.0.1:${SMOKE_PORT:-8765}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/neogeod"
WAL="$(mktemp -d)/queue.wal"

go build -o "$BIN" ./cmd/neogeod

"$BIN" -addr "$ADDR" -wal "$WAL" -shards 2 -drain-interval 50ms &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the daemon to come up.
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || { echo "neogeod never became healthy" >&2; exit 1; }
  sleep 0.1
done

echo "== submit one report"
SUBMIT=$(curl -fsS -X POST "$BASE/v1/messages" \
  -H 'Content-Type: application/json' \
  -d '{"text":"loved the Axel Hotel in Berlin, great stay","source":"alice"}')
echo "$SUBMIT"
echo "$SUBMIT" | grep -q '"status": "queued"' || { echo "submit not acknowledged" >&2; exit 1; }

echo "== wait for the drain loop to integrate it"
i=0
until curl -fsS "$BASE/v1/stats" | grep -q '"Hotels": 1'; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || { echo "report never integrated:" >&2; curl -fsS "$BASE/v1/stats" >&2; exit 1; }
  sleep 0.1
done
curl -fsS "$BASE/v1/stats"

echo "== ask the question"
ANSWER=$(curl -fsS -X POST "$BASE/v1/ask" \
  -H 'Content-Type: application/json' \
  -d '{"question":"can anyone recommend a good hotel in Berlin?","source":"bob"}')
echo "$ANSWER"
echo "$ANSWER" | grep -qi "axel hotel" || { echo "answer does not name the reported hotel" >&2; exit 1; }

echo "== smoke OK"
