#!/usr/bin/env sh
# End-to-end HTTP smoke test: build neogeod, start it durable (-wal +
# -data-dir), submit one report and one question over the API, and
# assert the answer names the hotel the report was about. Then the
# crash-recovery leg: checkpoint over the admin endpoint, submit one
# more report (acknowledged after the checkpoint), SIGKILL the daemon,
# restart it against the same WAL and data directory, and assert the
# pre-crash knowledge — both the checkpointed and the replayed half —
# still answers. Exercises the full submit -> background drain -> ask ->
# stats -> checkpoint -> crash -> recover path a deployment depends on.
# The hot-read-path legs then assert the answer cache serves a repeated
# question (hit counter advances on /metrics) and that a standing query
# registered over /v1/subscribe streams a matching report as an SSE
# event end to end. The tracing legs drive the span layer: an explained
# ask returns its own stage breakdown, a request kept by the slow
# threshold (forced low via NEOGEO_TRACE_SLOW) is fetchable by its
# X-Request-Id at /v1/traces/{id}, and the flight-recorder view serves
# on the debug listener only.
set -eu

echo "== preflight: static analysis (scripts/lint.sh)"
sh "$(dirname "$0")/lint.sh"

ADDR="127.0.0.1:${SMOKE_PORT:-8765}"
BASE="http://$ADDR"
DEBUG_ADDR="127.0.0.1:${SMOKE_DEBUG_PORT:-8766}"
DEBUG_BASE="http://$DEBUG_ADDR"
BIN="$(mktemp -d)/neogeod"
STATE="$(mktemp -d)"
WAL="$STATE/queue.wal"
DATA="$STATE/data"

go build -o "$BIN" ./cmd/neogeod

start_daemon() {
  # -workers 1 keeps drains in queue order so record IDs are stable
  # across crash-replay restarts — the feedback leg rejects a record by
  # ID and asserts the effect survives a second SIGKILL.
  # NEOGEO_TRACE_SLOW=1us marks every request slow, so the tracing legs
  # below can fetch an ordinary (non-explain) request's trace by ID.
  NEOGEO_TRACE_SLOW=1us "$BIN" -addr "$ADDR" -debug-addr "$DEBUG_ADDR" -wal "$WAL" -data-dir "$DATA" -shards 2 -workers 1 -drain-interval 50ms -answer-cache 64 &
  PID=$!
}

# acked_total reads the queue's acknowledged-message counter off the
# Prometheus exposition (0 when the series does not exist yet).
acked_total() {
  curl -fsS "$BASE/metrics" | awk 'BEGIN {v = 0} $1 == "neogeo_mq_acked_total" {v = int($2)} END {print v}'
}

wait_healthy() {
  i=0
  until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "neogeod never became healthy" >&2; exit 1; }
    sleep 0.1
  done
}

wait_hotels() {
  want=$1
  i=0
  until curl -fsS "$BASE/v1/stats" | grep -q "\"Hotels\": $want"; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "report never integrated:" >&2; curl -fsS "$BASE/v1/stats" >&2; exit 1; }
    sleep 0.1
  done
}

start_daemon
trap 'kill "$PID" 2>/dev/null || true' EXIT
wait_healthy

echo "== submit one report"
SUBMIT=$(curl -fsS -X POST "$BASE/v1/messages" \
  -H 'Content-Type: application/json' \
  -d '{"text":"loved the Axel Hotel in Berlin, great stay","source":"alice"}')
echo "$SUBMIT"
echo "$SUBMIT" | grep -q '"status": "queued"' || { echo "submit not acknowledged" >&2; exit 1; }

echo "== wait for the drain loop to integrate it"
wait_hotels 1
curl -fsS "$BASE/v1/stats"

echo "== ask the question"
ANSWER=$(curl -fsS -X POST "$BASE/v1/ask" \
  -H 'Content-Type: application/json' \
  -d '{"question":"can anyone recommend a good hotel in Berlin?","source":"bob"}')
echo "$ANSWER"
echo "$ANSWER" | grep -qi "axel hotel" || { echo "answer does not name the reported hotel" >&2; exit 1; }

echo "== scrape /metrics: pipeline families present after traffic"
METRICS=$(curl -fsS "$BASE/metrics")
for fam in neogeo_mq_enqueued_total neogeo_mq_acked_total neogeo_pipeline_stage_seconds \
  neogeo_pipeline_transit_seconds neogeo_ask_seconds neogeo_http_requests_total \
  neogeo_http_request_seconds neogeo_mq_pending; do
  echo "$METRICS" | grep -q "^# TYPE $fam" || { echo "metrics family $fam missing" >&2; exit 1; }
done
ACKED1=$(acked_total)
[ "$ACKED1" -ge 1 ] || { echo "no acknowledged messages recorded in metrics" >&2; exit 1; }

echo "== X-Request-Id round-trip on the public surface"
curl -fsS -D - -o /dev/null -H 'X-Request-Id: smoke-trace-1' "$BASE/healthz" |
  grep -qi '^x-request-id: smoke-trace-1' || { echo "request id not echoed" >&2; exit 1; }

echo "== debug listener: metrics and pprof, off the public mux"
curl -fsS "$DEBUG_BASE/metrics" | grep -q '^# TYPE neogeo_mq_enqueued_total' ||
  { echo "debug listener does not serve metrics" >&2; exit 1; }
curl -fsS "$DEBUG_BASE/debug/pprof/cmdline" >/dev/null || { echo "debug listener does not serve pprof" >&2; exit 1; }
if curl -fsS "$BASE/debug/pprof/cmdline" >/dev/null 2>&1; then
  echo "pprof leaked onto the public mux" >&2; exit 1
fi

echo "== explain ask: the answer carries its own span breakdown"
EXPLAIN=$(curl -fsS -X POST "$BASE/v1/ask" \
  -H 'Content-Type: application/json' \
  -d '{"question":"can anyone recommend a good hotel in Berlin?","source":"bob","explain":true}')
echo "$EXPLAIN" | grep -q '"trace"' || { echo "explain response has no trace" >&2; exit 1; }
echo "$EXPLAIN" | grep -q '"ask_explain"' || { echo "explain breakdown missing its root span" >&2; exit 1; }
# The same question was asked above, so this ride goes through the
# answer cache — the breakdown shows the ask stage and its cache lookup.
for span in '"ask"' '"cache_lookup"'; do
  echo "$EXPLAIN" | grep -q "\"name\": $span" || { echo "explain breakdown missing stage span $span" >&2; exit 1; }
done
echo "$EXPLAIN" | grep -qi "axel hotel" || { echo "explained answer lost the answer itself" >&2; exit 1; }

echo "== /metrics format negotiation: classic scrape stays exemplar-free, OpenMetrics carries them"
# The explain ask above stored an exemplar on the ask histogram; the
# classic 0.0.4 exposition must never show it (its grammar rejects
# tokens after the sample value), while an OpenMetrics Accept header
# switches to the exemplar-bearing, # EOF-terminated exposition.
CLASSIC=$(curl -fsS "$BASE/metrics")
if echo "$CLASSIC" | grep -q ' # {trace_id='; then
  echo "classic text exposition leaked an exemplar" >&2; exit 1
fi
OM=$(curl -fsS -H 'Accept: application/openmetrics-text; version=1.0.0' "$BASE/metrics")
echo "$OM" | grep -q ' # {trace_id=' || { echo "OpenMetrics exposition has no exemplar" >&2; exit 1; }
echo "$OM" | tail -1 | grep -q '^# EOF' || { echo "OpenMetrics exposition not terminated by # EOF" >&2; exit 1; }

echo "== slow trace kept by the recorder and fetchable by request ID"
curl -fsS -X POST "$BASE/v1/ask" \
  -H 'Content-Type: application/json' \
  -H 'X-Request-Id: smoke-slow-1' \
  -d '{"question":"can anyone recommend a good hotel in Berlin?","source":"bob"}' >/dev/null
# The root span completes just after the response is written, so give
# the recorder a beat before declaring the trace lost.
TRACE=""
for _ in $(seq 1 20); do
  TRACE=$(curl -fsS "$BASE/v1/traces/smoke-slow-1" 2>/dev/null) && break
  sleep 0.1
done
echo "$TRACE" | grep -q '"trace_id": "smoke-slow-1"' || { echo "trace not fetchable by ID" >&2; exit 1; }
echo "$TRACE" | grep -q '"http_request"' || { echo "trace missing the middleware root span" >&2; exit 1; }
if curl -fsS "$BASE/v1/traces/no-such-trace" >/dev/null 2>&1; then
  echo "unknown trace ID did not 404" >&2; exit 1
fi

echo "== flight-recorder view on the debug listener, off the public mux"
curl -fsS "$DEBUG_BASE/debug/traces" | grep -q 'flight recorder' ||
  { echo "debug listener does not serve /debug/traces" >&2; exit 1; }
curl -fsS "$DEBUG_BASE/debug/traces?format=json" | grep -q '"enabled": true' ||
  { echo "/debug/traces JSON view broken" >&2; exit 1; }
if curl -fsS "$BASE/debug/traces" >/dev/null 2>&1; then
  echo "/debug/traces leaked onto the public mux" >&2; exit 1
fi

echo "== checkpoint over the admin endpoint"
CKPT=$(curl -fsS -X POST "$BASE/v1/checkpoint")
echo "$CKPT"
echo "$CKPT" | grep -q '"status": "written"' || { echo "checkpoint not written" >&2; exit 1; }

echo "== submit a second report, acknowledged after the checkpoint"
curl -fsS -X POST "$BASE/v1/messages" \
  -H 'Content-Type: application/json' \
  -d '{"text":"very impressed by the Movenpick Hotel in Berlin, well done","source":"carol"}' >/dev/null
wait_hotels 2

echo "== acked counter advanced with the second report"
ACKED2=$(acked_total)
[ "$ACKED2" -gt "$ACKED1" ] || { echo "acked counter did not advance ($ACKED1 -> $ACKED2)" >&2; exit 1; }

echo "== SIGKILL the daemon (no graceful shutdown, no final checkpoint)"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

echo "== restart against the same WAL and data directory"
start_daemon
trap 'kill "$PID" 2>/dev/null || true' EXIT
wait_healthy

echo "== the checkpointed report and the WAL-replayed one both recovered"
wait_hotels 2

echo "== metrics recording resumed after the crash restart"
[ "$(acked_total)" -ge 1 ] || { echo "no acks recorded after restart (replay drain should ack)" >&2; exit 1; }
curl -fsS "$BASE/v1/stats"
curl -fsS "$BASE/v1/stats" | grep -q '"enabled": true' || { echo "durability not reported in stats" >&2; exit 1; }

ANSWER=$(curl -fsS -X POST "$BASE/v1/ask" \
  -H 'Content-Type: application/json' \
  -d '{"question":"can anyone recommend a good hotel in Berlin?","source":"bob"}')
echo "$ANSWER"
echo "$ANSWER" | grep -qi "axel hotel" || { echo "checkpointed knowledge lost after crash" >&2; exit 1; }
echo "$ANSWER" | grep -qi "movenpick" || { echo "WAL-replayed knowledge lost after crash" >&2; exit 1; }

echo "== feedback round-trip: two tied reports, reject the leader"
curl -fsS -X POST "$BASE/v1/messages" \
  -H 'Content-Type: application/json' \
  -d '{"text":"wonderful stay at the Hotel Kilo in Paris, lovely place","source":"dave"}' >/dev/null
curl -fsS -X POST "$BASE/v1/messages" \
  -H 'Content-Type: application/json' \
  -d '{"text":"wonderful stay at the Hotel Lima in Paris, lovely place","source":"erin"}' >/dev/null
wait_hotels 4

first_paris_hotel() {
  curl -fsS -X POST "$BASE/v1/ask" \
    -H 'Content-Type: application/json' \
    -d '{"question":"can anyone recommend a good hotel in Paris?","source":"bob"}' |
    grep -o 'Hotel Kilo\|Hotel Lima' | head -1
}

ANSWER=$(curl -fsS -X POST "$BASE/v1/ask" \
  -H 'Content-Type: application/json' \
  -d '{"question":"can anyone recommend a good hotel in Paris?","source":"bob"}')
echo "$ANSWER"
[ "$(first_paris_hotel)" = "Hotel Kilo" ] || { echo "expected Hotel Kilo to lead the tied ranking" >&2; exit 1; }
TOP_ID=$(echo "$ANSWER" | grep -o '"id": [0-9]*' | head -1 | grep -o '[0-9]*')

echo "== reject record $TOP_ID over /v1/feedback"
FB=$(curl -fsS -X POST "$BASE/v1/feedback" \
  -H 'Content-Type: application/json' \
  -d "{\"record_id\":$TOP_ID,\"verdict\":\"reject\",\"source\":\"bob\"}")
echo "$FB"
echo "$FB" | grep -q '"status": "accepted"' || { echo "feedback not accepted" >&2; exit 1; }

echo "== wait for the background loop to apply the verdict"
i=0
until curl -fsS "$BASE/v1/stats" | grep -q '"rejected": 1'; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || { echo "verdict never applied:" >&2; curl -fsS "$BASE/v1/stats" >&2; exit 1; }
  sleep 0.1
done
[ "$(first_paris_hotel)" = "Hotel Lima" ] || { echo "reject did not change the ranking" >&2; exit 1; }
echo "== ranking flipped to Hotel Lima"

echo "== SIGKILL again: the applied verdict must survive via ledger replay"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
start_daemon
trap 'kill "$PID" 2>/dev/null || true' EXIT
wait_healthy
i=0
until [ "$(first_paris_hotel 2>/dev/null || true)" = "Hotel Lima" ]; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || { echo "feedback effect lost after crash:" >&2; curl -fsS "$BASE/v1/stats" >&2; exit 1; }
  sleep 0.1
done
echo "== feedback survived the crash"

echo "== answer cache: a repeated question is served from the cache"
cache_hits() {
  curl -fsS "$BASE/metrics" | awk 'BEGIN {v = 0} $1 == "neogeo_cache_hits_total" {v = int($2)} END {print v}'
}
HITS0=$(cache_hits)
curl -fsS -X POST "$BASE/v1/ask" \
  -H 'Content-Type: application/json' \
  -d '{"question":"can anyone recommend a good hotel in Berlin?","source":"bob"}' >/dev/null
curl -fsS -X POST "$BASE/v1/ask" \
  -H 'Content-Type: application/json' \
  -d '{"question":"can anyone recommend a good hotel in Berlin?","source":"bob"}' >/dev/null
HITS1=$(cache_hits)
[ "$HITS1" -gt "$HITS0" ] || { echo "cache hit counter did not advance ($HITS0 -> $HITS1)" >&2; exit 1; }
curl -fsS "$BASE/v1/stats" | grep -q '"enabled": true' || { echo "cache not reported in stats" >&2; exit 1; }
echo "== cache hits advanced $HITS0 -> $HITS1"

echo "== standing query: subscribe, stream, and watch a matching write arrive"
SUB=$(curl -fsS -X POST "$BASE/v1/subscribe" \
  -H 'Content-Type: application/json' \
  -d '{"collection":"Hotels","key":"Hotel Sierra"}')
echo "$SUB"
SUB_ID=$(echo "$SUB" | grep -o '"id": "[^"]*"' | head -1 | sed 's/.*"id": "//;s/"$//')
[ -n "$SUB_ID" ] || { echo "subscribe returned no id" >&2; exit 1; }
SSE="$STATE/sse.out"
curl -fsS -N "$BASE/v1/subscribe/$SUB_ID/stream" >"$SSE" &
SSE_PID=$!
trap 'kill "$PID" "$SSE_PID" 2>/dev/null || true' EXIT
sleep 0.3 # let the stream attach before the write lands
curl -fsS -X POST "$BASE/v1/messages" \
  -H 'Content-Type: application/json' \
  -d '{"text":"wonderful stay at the Hotel Sierra in Rome, lovely place","source":"frank"}' >/dev/null
i=0
until grep -q 'Hotel Sierra' "$SSE" 2>/dev/null; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || { echo "no SSE event arrived:" >&2; cat "$SSE" >&2; exit 1; }
  sleep 0.1
done
grep -q '^event: record' "$SSE" || { echo "stream frames malformed:" >&2; cat "$SSE" >&2; exit 1; }
grep -q '"action":"inserted"' "$SSE" || { echo "event is not the insert:" >&2; cat "$SSE" >&2; exit 1; }
kill "$SSE_PID" 2>/dev/null || true
wait "$SSE_PID" 2>/dev/null || true
curl -fsS -X DELETE "$BASE/v1/subscribe/$SUB_ID" | grep -q '"status": "cancelled"' ||
  { echo "unsubscribe failed" >&2; exit 1; }
echo "== SSE event delivered and subscription cancelled"

echo "== smoke OK (including crash recovery, the feedback loop, the hot read path and tracing)"
