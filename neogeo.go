// Package neogeo is the public API of the neogeography system: a pipeline
// that channels large, ill-behaved user-generated text streams (tweets,
// SMS) into a probabilistic spatial XML database and answers natural-
// language questions over the accumulated collective knowledge.
//
// It reproduces the system proposed in Habib & van Keulen, "Neogeography:
// The Challenge of Channelling Large and Ill-Behaved Data Streams"
// (ICDE 2011 PhD workshop / Univ. of Twente TR). See README.md for the
// architecture, docs/API.md for the HTTP surface served by cmd/neogeod,
// and EXPERIMENTS.md for the reproduced results.
//
// The facade is a stable surface over the internal pipeline: systems are
// built with functional options, every entry point threads a
// context.Context, answers are structured (generated text plus the ranked
// results and their certainties), and failure conditions callers branch
// on are typed sentinel errors (ErrNotAQuestion, ErrQueueClosed).
//
// Quickstart:
//
//	sys, err := neogeo.New()
//	if err != nil { ... }
//	defer sys.Close()
//	ctx := context.Background()
//	sys.Ingest(ctx, "loved the Axel Hotel in Berlin, great stay", "alice")
//	ans, _ := sys.Ask(ctx, "can anyone recommend a good hotel in Berlin?", "bob")
//	fmt.Println(ans.Text)           // the generated reply
//	fmt.Println(ans.Query)          // the formulated database query
//	for _, r := range ans.Results { // the ranked records behind it
//		fmt.Println(r.Fields["Hotel_Name"], r.Certainty)
//	}
//
// For heavy streams, enqueue with Submit and drain through the concurrent
// pipeline — a worker pool (WithWorkers, default GOMAXPROCS) runs
// extraction in parallel while per-shard integration lanes amortize
// database integration and queue acknowledgement. WithShards partitions
// the probabilistic store spatially (0/1 keeps a single store). Drain
// streams outcomes as they complete, so a million-message drain never
// buffers every outcome in memory:
//
//	sys, _ := neogeo.New(neogeo.WithShards(4), neogeo.WithWorkers(8))
//	for _, m := range stream {
//		sys.Submit(ctx, m.Text, m.Source)
//	}
//	for out, err := range sys.Drain(ctx, 0) {
//		...
//	}
//
// Answers expose record IDs, and Feedback closes the paper's loop: a
// verdict (confirm/reject/correct) about a result updates the record's
// certainty, the reliability of the sources that built it, and the
// disambiguation priors that decide how future ambiguous place names
// resolve. Verdicts apply asynchronously in per-shard batches:
//
//	ans, _ := sys.Ask(ctx, "any good hotel in Paris?", "bob")
//	sys.Feedback(ctx, neogeo.Feedback{
//		RecordID: ans.Results[0].ID,
//		Verdict:  neogeo.VerdictConfirm,
//		Source:   "bob",
//	})
//	sys.FlushFeedback(ctx) // or let the serving layer's loop apply it
//
// To serve the system over HTTP, see internal/server and the cmd/neogeod
// daemon.
package neogeo

import (
	"context"
	"errors"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/mq"
	"repro/internal/obs"
	"repro/internal/uncertain"
)

// CheckpointInfo describes one written checkpoint.
type CheckpointInfo struct {
	// Seq is the checkpoint's monotonic sequence number within the data
	// directory.
	Seq uint64
	// Bytes is the checkpoint file's size.
	Bytes int64
}

// System is the assembled neogeography pipeline behind the facade. All
// methods are safe for concurrent use.
type System struct {
	sys *core.System
}

// New builds a System. The zero-option value is a working laptop-scale
// system with a calibrated synthetic gazetteer; options scale it out
// (WithShards, WithWorkers) or make it durable (WithQueueWAL).
func New(opts ...Option) (*System, error) {
	var s settings
	for _, opt := range opts {
		opt(&s)
	}
	sys, err := core.New(s.core)
	if err != nil {
		return nil, err
	}
	return &System{sys: sys}, nil
}

// Close releases the system's resources (the message-queue WAL). After
// Close, Submit and Ingest return ErrQueueClosed.
func (s *System) Close() error {
	return s.sys.Close()
}

// Submit enqueues a raw user message for asynchronous processing by a
// later Drain and returns its queue ID.
func (s *System) Submit(ctx context.Context, body, source string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	id, err := s.sys.Submit(ctx, body, source)
	if err != nil {
		return 0, mapQueueErr(err)
	}
	return id, nil
}

// Ingest submits and fully processes one message synchronously, returning
// its outcome — classification, integration actions, and for requests the
// structured answer. Processing is synchronous CPU work; ctx is checked
// on entry.
//
// Ingest is meant for interactive, single-writer flows: it processes the
// queue's next message, which is its own submission only while no Drain
// runs concurrently. A serving deployment uses Submit + Drain for
// contributions and Ask (which never touches the queue) for questions.
func (s *System) Ingest(ctx context.Context, body, source string) (*Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out, err := s.sys.Ingest(ctx, body, source)
	if err != nil {
		return nil, mapQueueErr(err)
	}
	return publicOutcome(out), nil
}

// Ask answers a question synchronously through the read-only QA path —
// nothing is enqueued, so Ask never races with a concurrent Drain over
// pending messages. A message classified informative rather than as a
// question fails with a *NotAQuestionError matching ErrNotAQuestion,
// carrying the classification (type, probability) the classifier saw.
func (s *System) Ask(ctx context.Context, question, source string) (*Answer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ans, err := s.sys.Ask(ctx, question, source)
	if err != nil {
		return nil, mapAskErr(err)
	}
	return publicAnswer(ans), nil
}

// Stats returns a snapshot of the system's stores, queue health and
// durability state.
func (s *System) Stats() Stats {
	st := s.sys.Stats()
	q := s.sys.Queue.Stats()
	ck := s.sys.CheckpointStats()
	return Stats{
		GazetteerEntries: st.GazetteerEntries,
		GazetteerNames:   st.GazetteerNames,
		Queue: QueueStats{
			Pending:         q.Pending,
			InFlight:        q.InFlight,
			Acked:           q.Acked,
			DeadLettered:    q.DeadLettered,
			WALAppendErrors: q.WALAppendErrors,
		},
		Collections:  st.Collections,
		Shards:       st.Shards,
		ShardRecords: st.ShardRecords,
		Checkpoint: CheckpointStats{
			Enabled:   ck.Enabled,
			Count:     ck.Count,
			LastSeq:   ck.LastSeq,
			LastBytes: ck.LastBytes,
			LastAge:   ck.LastAge,
			LastError: ck.LastError,
		},
		Feedback: FeedbackStats{
			Accepted:     st.Feedback.Accepted,
			Replayed:     st.Feedback.Replayed,
			Applied:      st.Feedback.Applied,
			Confirmed:    st.Feedback.Confirmed,
			Rejected:     st.Feedback.Rejected,
			Corrected:    st.Feedback.Corrected,
			Pending:      st.Feedback.Pending,
			Deferred:     st.Feedback.Deferred,
			DroppedStale: st.Feedback.DroppedStale,
		},
		Decay: DecayStats{
			Runs:    st.Decay.Runs,
			Decayed: st.Decay.Decayed,
			Deleted: st.Decay.Deleted,
		},
		Cache: CacheStats{
			Enabled:       st.CacheEnabled,
			Entries:       st.Cache.Entries,
			Capacity:      st.Cache.Capacity,
			Hits:          st.Cache.Hits,
			Misses:        st.Cache.Misses,
			HitRate:       hitRate(st.Cache.Hits, st.Cache.Misses),
			Evictions:     st.Cache.Evictions,
			Invalidations: st.Cache.Invalidations,
		},
		Subscriptions: SubscriptionStats{
			Active:    st.Subscriptions.Active,
			Delivered: st.Subscriptions.Delivered,
			Dropped:   st.Subscriptions.Dropped,
		},
		Latency: LatencyStats{
			Ask:       latencySummary("neogeo_ask_seconds"),
			Extract:   latencySummary("neogeo_pipeline_stage_seconds", "extract"),
			Integrate: latencySummary("neogeo_pipeline_stage_seconds", "integrate"),
			Transit:   latencySummary("neogeo_pipeline_transit_seconds"),
		},
		Traces: TraceStats{
			Enabled:              st.TracesEnabled,
			Capacity:             st.Traces.Capacity,
			Kept:                 st.Traces.Kept,
			Active:               st.Traces.Active,
			Completed:            st.Traces.Completed,
			KeptTotal:            st.Traces.KeptTotal,
			Dropped:              st.Traces.Dropped,
			Evicted:              st.Traces.Evicted,
			SlowThresholdSeconds: st.Traces.SlowThresholdSeconds,
			SampleN:              st.Traces.SampleN,
		},
	}
}

// hitRate folds the cache counters into the ratio dashboards want.
func hitRate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// latencySummary digests one of the observability layer's histogram
// series for Stats; series that do not exist yet (nothing observed)
// digest to a zero summary.
func latencySummary(name string, labels ...string) LatencySummary {
	s := obs.Default().FindHistogram(name, labels...).Summary()
	return LatencySummary{Count: s.Count, Mean: s.Mean, P50: s.P50, P95: s.P95, P99: s.P99}
}

// Checkpoint writes one durable image of the integrated store to the
// data directory (WithDataDir) and returns what was written. The write
// is atomic and fsynced; on the next construction against the same
// directory the newest valid checkpoint is restored before the queue
// WAL replays, so a crash between checkpoints loses nothing that was
// acknowledged — those messages re-integrate idempotently. Without a
// data directory it fails with ErrNoDataDir.
func (s *System) Checkpoint(ctx context.Context) (CheckpointInfo, error) {
	info, err := s.sys.Checkpoint(ctx)
	if err != nil {
		if errors.Is(err, core.ErrNoDataDir) {
			return CheckpointInfo{}, ErrNoDataDir
		}
		return CheckpointInfo{}, err
	}
	return CheckpointInfo{Seq: info.Seq, Bytes: info.Size}, nil
}

// CheckpointInterval returns the cadence configured with
// WithCheckpointInterval (0: none) — the serving layer's background
// checkpoint loop reads it off the built system.
func (s *System) CheckpointInterval() time.Duration {
	return s.sys.CheckpointInterval()
}

// Snapshot writes a consistent image of the (possibly sharded)
// probabilistic spatial XML database to w. Together with the queue WAL
// this covers the system's durable state; the gazetteer, ontology and
// knowledge base are rebuilt from configuration.
func (s *System) Snapshot(w io.Writer) error {
	return s.sys.Snapshot(w)
}

// Restore replaces the database contents with a snapshot produced by
// Snapshot on a system with the same shard count. On error the database
// is unchanged.
func (s *System) Restore(r io.Reader) error {
	return s.sys.Restore(r)
}

// Decay applies temporal certainty decay to every stored record as of
// now, deleting records whose certainty falls below floor — geographic
// information is dynamic, and unconfirmed reports fade.
func (s *System) Decay(now time.Time, floor float64) (decayed, deleted int, err error) {
	return s.sys.DecayAll(now, uncertain.CF(floor))
}

// mapQueueErr rewrites the internal queue-closed condition onto the
// facade's sentinel so callers never import internal packages to branch.
func mapQueueErr(err error) error {
	if errors.Is(err, mq.ErrClosed) {
		return ErrQueueClosed
	}
	return err
}
