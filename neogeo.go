// Package neogeo is the public API of the neogeography system: a pipeline
// that channels large, ill-behaved user-generated text streams (tweets,
// SMS) into a probabilistic spatial XML database and answers natural-
// language questions over the accumulated collective knowledge.
//
// It reproduces the system proposed in Habib & van Keulen, "Neogeography:
// The Challenge of Channelling Large and Ill-Behaved Data Streams"
// (ICDE 2011 PhD workshop / Univ. of Twente TR). See README.md for the
// architecture and EXPERIMENTS.md for the reproduced results.
//
// Quickstart:
//
//	sys, err := neogeo.New(neogeo.Config{})
//	if err != nil { ... }
//	defer sys.Close()
//	sys.Ingest("loved the Axel Hotel in Berlin, great stay", "alice")
//	answer, _ := sys.Ask("can anyone recommend a good hotel in Berlin?", "bob")
//
// For heavy streams, enqueue with Submit and drain through the concurrent
// pipeline — a worker pool (Config.Workers, default GOMAXPROCS) runs
// extraction in parallel while per-shard integration lanes amortize
// database integration and queue acknowledgement. Config.Shards
// partitions the probabilistic store spatially (0/1 keeps a single
// store). For streams whose reports resolve locations consistently —
// the validation scenarios — answers are identical either way and
// sharding is purely a throughput lever; see shard.GridRouter for the
// placement caveats on mixed located/location-less streams:
//
//	for _, m := range stream {
//		sys.Submit(m.Text, m.Source)
//	}
//	outs, errs := sys.ProcessConcurrent(ctx, 0)
package neogeo

import (
	"repro/internal/core"
)

// Config parameterises system construction. The zero value is a working
// laptop-scale system with a calibrated synthetic gazetteer.
type Config = core.Config

// System is the assembled neogeography pipeline.
type System = core.System

// Stats is a snapshot of the system's stores.
type Stats = core.Stats

// New builds a System from a Config.
func New(cfg Config) (*System, error) {
	return core.New(cfg)
}
