package neogeo

import (
	"time"

	"repro/internal/coordinator"
	"repro/internal/extract"
	"repro/internal/integrate"
	"repro/internal/pxml"
	"repro/internal/qa"
	"repro/internal/xmldb"
)

// MessageType is the classifier's first decision per message.
type MessageType string

// Message types.
const (
	// TypeInformative marks a contribution: the message carries facts to
	// integrate into the collective knowledge.
	TypeInformative MessageType = "informative"
	// TypeRequest marks a question to answer over that knowledge.
	TypeRequest MessageType = "request"
)

// Outcome summarises the processing of one message.
type Outcome struct {
	// MessageID is the queue ID the message was processed under.
	MessageID int64
	// Type is the classified message type.
	Type MessageType
	// Probability is the classifier's confidence in Type.
	Probability float64
	// Domain is the recognised subject domain ("tourism", "traffic",
	// "farming"), empty when none matched.
	Domain string
	// Inserted and Merged count integration actions for informative
	// messages: new records created versus duplicates folded into
	// existing ones.
	Inserted, Merged int
	// Answer is the structured reply for request messages, nil for
	// informative ones.
	Answer *Answer
	// Trace is the observability trace ID the message carried through
	// the pipeline (minted at Submit or accepted via X-Request-Id);
	// empty for untraced submissions.
	Trace string
}

// Answer is a question's structured reply: the generated text plus the
// formulated query and the ranked records it was generated from.
type Answer struct {
	// Text is the generated natural-language reply.
	Text string
	// Query is the formulated database query, for transparency — the
	// paper shows it explicitly in the worked scenario.
	Query string
	// Results are the ranked records behind the reply, best first.
	Results []Result
}

// Result is one ranked record in an answer.
type Result struct {
	// ID is the record's database ID.
	ID int64
	// Certainty is the record's overall rank score — the probability the
	// query condition holds, weighted by the integration-assigned record
	// certainty (the paper's score($x)).
	Certainty float64
	// CondP is the probability that the query's where-clause holds for
	// this record under possible-world semantics (1 with no condition).
	CondP float64
	// Location is the record's resolved position, nil when none was
	// resolved.
	Location *Location
	// Fields maps the record's top-level fields to their most likely
	// value: for probabilistic fields the highest-probability
	// alternative, for plain fields the stored text.
	Fields map[string]string
	// XML is the stored probabilistic XML document, for display and
	// debugging.
	XML string
}

// Location is a resolved geographic position.
type Location struct {
	Lat float64 // latitude, degrees north
	Lon float64 // longitude, degrees east
}

// Stats is a snapshot of the system's stores and queue health.
type Stats struct {
	// GazetteerEntries and GazetteerNames size the toponym database:
	// total references and distinct names.
	GazetteerEntries int
	GazetteerNames   int
	// Queue is the message queue's health.
	Queue QueueStats
	// Collections counts stored records per collection across all shards.
	Collections map[string]int
	// Shards is the store's partition count; ShardRecords the total
	// record count per shard.
	Shards       int
	ShardRecords []int
	// Checkpoint is the durability subsystem's state.
	Checkpoint CheckpointStats
	// Feedback is the user-feedback subsystem's counters.
	Feedback FeedbackStats
	// Decay is the certainty-ageing totals.
	Decay DecayStats
	// Cache is the answer cache's snapshot (Enabled false without
	// WithAnswerCache).
	Cache CacheStats
	// Subscriptions is the standing-query broadcaster's snapshot.
	Subscriptions SubscriptionStats
	// Latency summarises the observability layer's latency histograms
	// for the hot paths; zero-valued summaries when nothing has been
	// observed yet (full distributions are on GET /metrics).
	Latency LatencyStats
	// Traces is the span flight recorder's snapshot (Enabled false
	// without WithTraceRecorder).
	Traces TraceStats
}

// TraceStats is the span flight recorder's snapshot.
type TraceStats struct {
	// Enabled says whether tracing is configured (WithTraceRecorder).
	Enabled bool
	// Capacity is the recorder's completed-trace ring bound; Kept how
	// many traces it currently holds; Active how many traces have
	// started but not yet finished their root span.
	Capacity int
	Kept     int
	Active   int
	// Completed counts finished traces, KeptTotal the subset the keep
	// policy recorded, Dropped the subset it discarded, and Evicted
	// recorded traces later displaced by ring capacity.
	Completed uint64
	KeptTotal uint64
	Dropped   uint64
	Evicted   uint64
	// SlowThresholdSeconds is the always-keep latency bar; SampleN the
	// 1-in-N sampling rate for ordinary traces (0: none kept).
	SlowThresholdSeconds float64
	SampleN              int
}

// CacheStats is the answer cache's snapshot.
type CacheStats struct {
	// Enabled says whether the cache is configured (WithAnswerCache).
	Enabled bool
	// Entries is the current entry count; Capacity the configured bound.
	Entries  int
	Capacity int
	// Hits and Misses count lookups; HitRate is Hits/(Hits+Misses),
	// 0 before any lookup.
	Hits    int64
	Misses  int64
	HitRate float64
	// Evictions counts entries dropped by LRU capacity pressure,
	// Invalidations entries dropped because a touched shard's version
	// moved.
	Evictions     int64
	Invalidations int64
}

// SubscriptionStats is the standing-query broadcaster's snapshot.
type SubscriptionStats struct {
	// Active is the current subscription count.
	Active int
	// Delivered and Dropped count events buffered for consumers versus
	// lost to per-subscription buffer bounds.
	Delivered int64
	Dropped   int64
}

// LatencyStats groups the latency summaries surfaced in Stats.
type LatencyStats struct {
	// Ask is the synchronous ask path end to end.
	Ask LatencySummary
	// Extract is the IE stage per message (classify+NER+disambiguate).
	Extract LatencySummary
	// Integrate is the integration stage per amortized batch.
	Integrate LatencySummary
	// Transit is the full pipeline transit, enqueue to acknowledged.
	Transit LatencySummary
}

// LatencySummary digests one latency histogram. Quantiles are
// estimated by interpolation over fixed histogram buckets, so they are
// bounded by the bucket layout's resolution.
type LatencySummary struct {
	// Count is how many observations the summary covers.
	Count uint64
	// Mean is the arithmetic mean in seconds.
	Mean float64
	// P50, P95 and P99 are estimated quantiles in seconds.
	P50, P95, P99 float64
}

// CheckpointStats is the durability subsystem's health snapshot: is
// checkpointing configured, how many images this process has written,
// and how stale the newest one is.
type CheckpointStats struct {
	// Enabled says whether a data directory is configured (WithDataDir).
	Enabled bool
	// Count is the number of checkpoints written since construction.
	Count int
	// LastSeq, LastBytes and LastAge describe the newest valid
	// checkpoint, written or recovered; zero values when none exists.
	LastSeq   uint64
	LastBytes int64
	LastAge   time.Duration
	// LastError is the most recent checkpoint attempt's failure message,
	// empty when it succeeded. /healthz degrades with reason
	// checkpoint_stale while it is set.
	LastError string
}

// QueueStats is the message queue's health snapshot.
type QueueStats struct {
	// Pending is the number of undelivered messages.
	Pending int
	// InFlight is the number of leased, unacknowledged messages.
	InFlight int
	// Acked counts messages successfully acknowledged over the queue's
	// lifetime.
	Acked int
	// DeadLettered counts messages that exhausted their delivery
	// attempts.
	DeadLettered int
	// WALAppendErrors counts queue-WAL appends that failed on the
	// dead-letter path; non-zero means the log and the in-memory
	// dead-letter list have diverged.
	WALAppendErrors int
}

// publicOutcome projects an internal outcome onto the facade's type.
func publicOutcome(out *coordinator.Outcome) *Outcome {
	if out == nil {
		return nil
	}
	pub := &Outcome{
		MessageID:   out.MessageID,
		Type:        MessageType(out.Type),
		Probability: out.TypeP,
		Domain:      out.Domain,
		Inserted:    out.Inserted,
		Merged:      out.Merged,
		Trace:       out.Trace,
	}
	if out.Response != nil {
		pub.Answer = publicAnswer(out.Response)
	}
	return pub
}

// publicAnswer projects the QA service's answer onto the facade's type.
func publicAnswer(ans *qa.Answer) *Answer {
	pub := &Answer{Text: ans.Text, Query: ans.Query}
	for _, r := range ans.Results {
		pub.Results = append(pub.Results, publicResult(r))
	}
	return pub
}

// publicResult flattens one ranked record: rank scores, resolved
// location, the most likely value per field, and the probabilistic
// document itself.
func publicResult(r xmldb.Result) Result {
	res := Result{
		ID:        r.Record.ID,
		Certainty: r.Score,
		CondP:     r.CondP,
		Fields:    make(map[string]string),
	}
	if r.Record.Location != nil {
		res.Location = &Location{Lat: r.Record.Location.Lat, Lon: r.Record.Location.Lon}
	}
	for _, c := range r.Record.Doc.Children {
		// Structural fields and provenance metadata stay out of the
		// public field map: the source trace names contributing users,
		// which belongs to the feedback machinery, not to answers.
		if c.Tag == "" || c.Tag == integrate.SourceTraceField {
			continue
		}
		v := c.TextContent()
		if top, ok := extract.MuxToDist(c).Top(); ok {
			v = top.Name
		}
		// Structural container fields (Geo) have no text of their own;
		// an empty value says nothing, so it stays out of the map.
		if v != "" {
			res.Fields[c.Tag] = v
		}
	}
	if s, err := pxml.Marshal(withoutSourceTrace(r.Record.Doc)); err == nil {
		res.XML = s
	}
	return res
}

// withoutSourceTrace strips the provenance element from a document
// before it is marshalled for display — the trace names contributing
// users and must not leak through the XML any more than through the
// field map. The stored document is never mutated.
func withoutSourceTrace(doc *pxml.Node) *pxml.Node {
	if n, _ := doc.FirstChild(integrate.SourceTraceField); n == nil {
		return doc
	}
	clean := doc.Clone()
	for i, c := range clean.Children {
		if c.Tag == integrate.SourceTraceField {
			clean.Children = append(clean.Children[:i], clean.Children[i+1:]...)
			break
		}
	}
	return clean
}
