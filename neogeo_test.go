package neogeo

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the README quickstart path through the
// root facade: build with options, ingest the paper's scenario, ask the
// paper's request, and read the structured answer.
func TestPublicAPIQuickstart(t *testing.T) {
	sys, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()

	ctx := context.Background()
	for i, m := range paperScenarioMessages {
		out, err := sys.Ingest(ctx, m, "user")
		if err != nil {
			t.Fatalf("Ingest #%d: %v", i+1, err)
		}
		if out == nil {
			t.Fatalf("Ingest #%d: nil outcome", i+1)
		}
		if out.Type != TypeInformative {
			t.Fatalf("Ingest #%d classified %s", i+1, out.Type)
		}
	}

	answer, err := sys.Ask(ctx, paperScenarioRequest, "asker")
	if err != nil {
		t.Fatalf("Ask: %v", err)
	}
	lower := strings.ToLower(answer.Text)
	if !strings.Contains(lower, "axel hotel") {
		t.Errorf("answer %q does not recommend Axel Hotel", answer.Text)
	}
	if !strings.Contains(lower, "berlin") {
		t.Errorf("answer %q does not mention Berlin", answer.Text)
	}
	// The structured answer exposes what the string used to flatten away.
	if !strings.Contains(answer.Query, "topk(") {
		t.Errorf("formulated query missing: %q", answer.Query)
	}
	if len(answer.Results) == 0 {
		t.Fatal("answer carries no ranked results")
	}
	top := answer.Results[0]
	if top.Certainty <= 0 || top.CondP <= 0 {
		t.Errorf("top result scores: certainty=%v condP=%v", top.Certainty, top.CondP)
	}
	if top.Fields["Hotel_Name"] == "" {
		t.Errorf("top result fields missing Hotel_Name: %v", top.Fields)
	}
	if !strings.Contains(top.XML, "Hotel_Name") {
		t.Errorf("top result XML missing document: %q", top.XML)
	}

	stats := sys.Stats()
	if stats.Collections["Hotels"] == 0 {
		t.Errorf("Stats.Collections[Hotels] = 0 after three ingests")
	}
	if stats.Queue.Acked != len(paperScenarioMessages) {
		t.Errorf("Stats.Queue.Acked = %d, want %d", stats.Queue.Acked, len(paperScenarioMessages))
	}
}

// TestPublicAPIRejectsEmpty guards the facade's input validation.
func TestPublicAPIRejectsEmpty(t *testing.T) {
	sys, err := New(WithGazetteerNames(200))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	ctx := context.Background()
	if _, err := sys.Ingest(ctx, "", "user"); err == nil {
		t.Error("Ingest(\"\") succeeded, want error")
	}
}

// TestAskNotAQuestion: an informative message handed to Ask fails with
// the typed sentinel, carrying the classification the classifier saw.
func TestAskNotAQuestion(t *testing.T) {
	sys, err := New(WithGazetteerNames(200))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	_, err = sys.Ask(context.Background(), "loved the Axel Hotel in Berlin, great stay", "alice")
	if !errors.Is(err, ErrNotAQuestion) {
		t.Fatalf("err = %v, want ErrNotAQuestion", err)
	}
	var naq *NotAQuestionError
	if !errors.As(err, &naq) {
		t.Fatalf("err is %T, want *NotAQuestionError", err)
	}
	if naq.Type != TypeInformative {
		t.Errorf("classified type = %s", naq.Type)
	}
	if naq.Probability <= 0 || naq.Probability > 1 {
		t.Errorf("classification probability = %v", naq.Probability)
	}
}

// TestQueueClosed: Submit after Close fails with the typed sentinel.
func TestQueueClosed(t *testing.T) {
	sys, err := New(WithGazetteerNames(200))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Submit(context.Background(), "road flooded near Lagos", "x"); !errors.Is(err, ErrQueueClosed) {
		t.Errorf("Submit after Close: err = %v, want ErrQueueClosed", err)
	}
}

// TestDrainStreams: Drain yields one outcome per submitted message as a
// streaming iterator, honours early break by cancelling the drain, and
// leaves no message stranded in flight.
func TestDrainStreams(t *testing.T) {
	sys, err := New(WithGazetteerNames(300), WithWorkers(2), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	ctx := context.Background()
	const n = 12
	for i := 0; i < n; i++ {
		msg := fmt.Sprintf("wonderful stay at the Hotel Number %d in Berlin, lovely place", i)
		if _, err := sys.Submit(ctx, msg, fmt.Sprintf("user%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	got := 0
	for out, err := range sys.Drain(ctx, 0) {
		if err != nil {
			t.Fatalf("drain error: %v", err)
		}
		if out.Type != TypeInformative {
			t.Errorf("outcome %d type = %s", got, out.Type)
		}
		got++
	}
	if got != n {
		t.Fatalf("drained %d outcomes, want %d", got, n)
	}
	st := sys.Stats()
	if st.Queue.Pending != 0 || st.Queue.InFlight != 0 {
		t.Fatalf("queue not drained: %+v", st.Queue)
	}

	// Early break: the iterator must cancel the drain and return without
	// stranding leased messages; the remainder drains on a second pass.
	for i := 0; i < n; i++ {
		msg := fmt.Sprintf("great breakfast at the Hotel Number %d in Berlin", i)
		if _, err := sys.Submit(ctx, msg, "late"); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	for _, err := range sys.Drain(ctx, 0) {
		if err != nil {
			t.Fatal(err)
		}
		seen++
		if seen == 3 {
			break
		}
	}
	if seen != 3 {
		t.Fatalf("broke after %d outcomes, want 3", seen)
	}
	// Breaking cancels the drain: messages already dispatched into the
	// pipeline complete and acknowledge (their outcomes are discarded),
	// undispatched ones stay pending — but nothing may be stranded in
	// flight, and a second drain plus the accounting must cover all 2n.
	if st := sys.Stats(); st.Queue.InFlight != 0 {
		t.Fatalf("broken drain stranded %d messages in flight", st.Queue.InFlight)
	}
	for _, err := range sys.Drain(ctx, 0) {
		if err != nil {
			t.Fatal(err)
		}
	}
	st = sys.Stats()
	if st.Queue.Pending != 0 || st.Queue.InFlight != 0 {
		t.Fatalf("queue not empty after second drain: %+v", st.Queue)
	}
	if st.Queue.Acked != 2*n {
		t.Fatalf("acked %d messages across both drains, want %d", st.Queue.Acked, 2*n)
	}
}

// TestDrainConsumerPanic: a panic in the consumer's loop body must not
// leak the pipeline or strand leased messages — the iterator's deferred
// teardown halts the drain even when the loop unwinds abnormally.
func TestDrainConsumerPanic(t *testing.T) {
	sys, err := New(WithGazetteerNames(300), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := sys.Submit(ctx, fmt.Sprintf("wonderful stay at the Hotel Number %d in Berlin", i), "u"); err != nil {
			t.Fatal(err)
		}
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate out of the drain loop")
			}
		}()
		for range sys.Drain(ctx, 0) {
			panic("consumer boom")
		}
	}()

	if st := sys.Stats(); st.Queue.InFlight != 0 {
		t.Fatalf("panicked drain stranded %d messages in flight", st.Queue.InFlight)
	}
	// The pipeline must be fully torn down: a second drain finishes the
	// remainder and empties the queue.
	for _, err := range sys.Drain(ctx, 0) {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := sys.Stats()
	if st.Queue.Pending != 0 || st.Queue.InFlight != 0 || st.Queue.Acked != n {
		t.Fatalf("queue after panic + redrain: %+v, want %d acked", st.Queue, n)
	}
}

// TestDeprecatedConfigShim: the alias-era construction struct still
// builds a working system.
func TestDeprecatedConfigShim(t *testing.T) {
	sys, err := NewFromConfig(Config{GazetteerNames: 300, Shards: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	if _, err := sys.Ingest(ctx, "loved the Axel Hotel in Berlin, great stay", "alice"); err != nil {
		t.Fatal(err)
	}
	if st := sys.Stats(); st.Shards != 2 {
		t.Errorf("Shards = %d, want 2", st.Shards)
	}
}

// TestFacadeSnapshotRoundTrip: a sharded system survives Snapshot/Restore
// through the facade with byte-identical Ask answers.
func TestFacadeSnapshotRoundTrip(t *testing.T) {
	build := func() *System {
		sys, err := New(WithGazetteerNames(300), WithShards(4), WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = sys.Close() })
		return sys
	}
	sys := build()
	ctx := context.Background()
	for i, m := range paperScenarioMessages {
		if _, err := sys.Ingest(ctx, m, fmt.Sprintf("user%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var img bytes.Buffer
	if err := sys.Snapshot(&img); err != nil {
		t.Fatal(err)
	}
	fresh := build()
	if err := fresh.Restore(bytes.NewReader(img.Bytes())); err != nil {
		t.Fatal(err)
	}
	want, err := sys.Ask(ctx, paperScenarioRequest, "asker")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Ask(ctx, paperScenarioRequest, "asker")
	if err != nil {
		t.Fatal(err)
	}
	if got.Text != want.Text {
		t.Errorf("restored answer diverges:\n original: %s\n restored: %s", want.Text, got.Text)
	}
}
