package neogeo

import (
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the README quickstart path through the
// root facade: build, ingest the paper's scenario, ask the paper's request.
func TestPublicAPIQuickstart(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()

	for i, m := range paperScenarioMessages {
		out, err := sys.Ingest(m, "user")
		if err != nil {
			t.Fatalf("Ingest #%d: %v", i+1, err)
		}
		if out == nil {
			t.Fatalf("Ingest #%d: nil outcome", i+1)
		}
	}

	answer, err := sys.Ask(paperScenarioRequest, "asker")
	if err != nil {
		t.Fatalf("Ask: %v", err)
	}
	lower := strings.ToLower(answer)
	if !strings.Contains(lower, "axel hotel") {
		t.Errorf("answer %q does not recommend Axel Hotel", answer)
	}
	if !strings.Contains(lower, "berlin") {
		t.Errorf("answer %q does not mention Berlin", answer)
	}

	stats := sys.Stats()
	if stats.Collections["Hotels"] == 0 {
		t.Errorf("Stats.Collections[Hotels] = 0 after three ingests")
	}
}

// TestPublicAPIRejectsEmpty guards the facade's input validation.
func TestPublicAPIRejectsEmpty(t *testing.T) {
	sys, err := New(Config{GazetteerNames: 200})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	if _, err := sys.Ingest("", "user"); err == nil {
		t.Error("Ingest(\"\") succeeded, want error")
	}
	if _, err := sys.Ask("", "user"); err == nil {
		t.Error("Ask(\"\") succeeded, want error")
	}
}
