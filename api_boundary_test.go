package neogeo

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestPublicSurfaceImports walks the import graph of every program under
// cmd/ and examples/ and fails if any imports the internal pipeline
// packages the facade now covers. This pins the API redesign's core
// guarantee: the facade's own types suffice for every in-tree caller, so
// future pipeline refactors land behind a stable surface.
func TestPublicSurfaceImports(t *testing.T) {
	banned := map[string]string{
		"repro/internal/coordinator": "use neogeo.Outcome / neogeo.Drain",
		"repro/internal/extract":     "use neogeo.MessageType / neogeo.Answer",
		"repro/internal/core":        "use neogeo.New with options",
	}
	fset := token.NewFileSet()
	checked := 0
	for _, root := range []string{"cmd", "examples"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			checked++
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if hint, bad := banned[p]; bad {
					t.Errorf("%s imports %s — %s", path, p, hint)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
	if checked == 0 {
		t.Fatal("no files checked — wrong working directory?")
	}
}
