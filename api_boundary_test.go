package neogeo

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/importboundary"
)

// TestPublicSurfaceImports pins the API redesign's core guarantee: the
// facade's own types suffice for every in-tree caller, so future
// pipeline refactors land behind a stable surface. The rule itself
// lives in the importboundary analyzer (internal/analysis) — this test
// is a thin wrapper that runs it over the real cmd/ and examples/
// trees, so the invariant has exactly one implementation shared by
// `go test`, cmd/neogeolint and CI.
func TestPublicSurfaceImports(t *testing.T) {
	pkgs, err := analysis.LoadPackages(".", "./cmd/...", "./examples/...")
	if err != nil {
		t.Fatalf("loading cmd/ and examples/: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded — wrong working directory?")
	}
	checked := 0
	for _, p := range pkgs {
		if strings.HasPrefix(p.Path, importboundary.ModulePath+"/cmd/") ||
			strings.HasPrefix(p.Path, importboundary.ModulePath+"/examples/") {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no cmd/ or examples/ packages matched — analyzer scoping is broken")
	}
	diags, err := analysis.RunPackages(pkgs, []*analysis.Analyzer{importboundary.Analyzer})
	if err != nil {
		t.Fatalf("running importboundary: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", analysis.Format(pkgs[0].Fset, d))
	}
}
