package neogeo

import (
	"time"

	"repro/internal/core"
)

// settings is the accumulated construction state; options mutate it.
type settings struct {
	core core.Config
}

// Option configures a System under construction. The zero-option system
// is a working laptop-scale deployment; options layer on scale (shards,
// workers), durability (queue WAL) and determinism (gazetteer seed,
// clock).
type Option func(*settings)

// WithGazetteerNames sets the synthetic gazetteer's size in distinct
// toponyms (default 2000; the experiment harness uses 20000).
func WithGazetteerNames(n int) Option {
	return func(s *settings) { s.core.GazetteerNames = n }
}

// WithGazetteerSeed seeds gazetteer synthesis (default 2011), making the
// toponym database — and therefore answers — reproducible across systems.
func WithGazetteerSeed(seed int64) Option {
	return func(s *settings) { s.core.GazetteerSeed = seed }
}

// WithQueueWAL persists the message queue to a write-ahead log at path,
// so unacknowledged user contributions survive restarts.
func WithQueueWAL(path string) Option {
	return func(s *settings) { s.core.QueueWAL = path }
}

// WithDataDir makes the integrated store durable: checkpoints of the
// (possibly sharded) probabilistic database are written to dir as an
// atomic, fsynced, rotated file set, and construction restores the
// newest valid checkpoint before the queue WAL replays. Combined with
// WithQueueWAL this makes the system crash-safe — every acknowledged
// contribution is either inside the restored image or replayed into it.
func WithDataDir(dir string) Option {
	return func(s *settings) { s.core.DataDir = dir }
}

// WithCheckpointInterval sets the cadence the serving layer's
// background loop checkpoints the store at (default 0: only explicit
// Checkpoint calls write images). Meaningful only with WithDataDir.
func WithCheckpointInterval(d time.Duration) Option {
	return func(s *settings) { s.core.CheckpointInterval = d }
}

// WithCheckpointRetain keeps the newest n checkpoint files after each
// write (default 3) — enough history to survive a corrupt newest image
// without unbounded disk growth.
func WithCheckpointRetain(n int) Option {
	return func(s *settings) { s.core.CheckpointRetain = n }
}

// WithWorkers sets the concurrency of the stream-processing pipeline:
// Drain runs classification and extraction on this many goroutines while
// per-shard integration lanes serialize database writes. 0 (the default)
// uses GOMAXPROCS; 1 keeps the pipeline single-threaded and its outcome
// order deterministic.
func WithWorkers(n int) Option {
	return func(s *settings) { s.core.Workers = n }
}

// WithShards partitions the probabilistic spatial XML database into n
// independently locked shards, routed spatially, with one pipeline
// integration lane per shard. 0 or 1 keeps a single store.
func WithShards(n int) Option {
	return func(s *settings) { s.core.Shards = n }
}

// WithIntegrateBatch caps how many messages a pipeline integration lane
// folds into one amortized database batch (default 16).
func WithIntegrateBatch(n int) Option {
	return func(s *settings) { s.core.IntegrateBatch = n }
}

// WithFeedbackBatch sets the per-shard verdict count that triggers an
// automatic feedback apply (default 16). Buffered verdicts below the
// threshold apply on the next FlushFeedback — the serving layer's
// background loop flushes every drain interval.
func WithFeedbackBatch(n int) Option {
	return func(s *settings) { s.core.FeedbackBatch = n }
}

// WithAnswerCache bounds the hot read path's answer cache at n entries:
// Ask results are cached under the normalized question, pinned to the
// version vector of the shards the query's plan touched, and served
// without re-running classification, extraction or the store query
// until a touched shard commits a write. 0 (the default) disables
// caching — every Ask recomputes.
func WithAnswerCache(n int) Option {
	return func(s *settings) { s.core.AnswerCache = n }
}

// WithTraceRecorder enables span tracing with an in-memory flight
// recorder bounded at n completed traces (0, the default, disables
// tracing — StartSpan degrades to a no-op on every hot path). Recorded
// traces are served by the daemon at GET /v1/traces/{id} and on the
// debug listener's /debug/traces view; Ask with "explain" always
// records its own trace regardless of this setting.
func WithTraceRecorder(n int) Option {
	return func(s *settings) { s.core.TraceRecorder = n }
}

// WithTraceSlowThreshold sets the recorder's always-keep latency bar
// (default 1s): a completed trace at least this slow is kept even when
// sampling would drop it. Meaningful only with WithTraceRecorder.
func WithTraceSlowThreshold(d time.Duration) Option {
	return func(s *settings) { s.core.TraceSlow = d }
}

// WithTraceSampling keeps one in n ordinary traces (those neither
// slow, errored, nor explicitly forced). 0, the default, keeps none —
// only the always-keep rules record. Meaningful only with
// WithTraceRecorder.
func WithTraceSampling(n int) Option {
	return func(s *settings) { s.core.TraceSampleN = n }
}

// WithClock overrides the system's time source (tests).
func WithClock(clock func() time.Time) Option {
	return func(s *settings) { s.core.Clock = clock }
}

// Config is the construction struct of the facade's alias era, kept so
// existing callers migrate mechanically.
//
// Deprecated: build systems with New and functional options
// (WithShards, WithWorkers, WithQueueWAL, …) instead; new construction
// knobs appear only as options.
type Config struct {
	// GazetteerNames is the synthetic gazetteer size (default 2000).
	GazetteerNames int
	// GazetteerSeed seeds gazetteer synthesis (default 2011).
	GazetteerSeed int64
	// QueueWAL, when non-empty, persists the message queue to this file.
	QueueWAL string
	// Workers sets the pipeline's worker-pool width (0 = GOMAXPROCS).
	Workers int
	// Shards partitions the probabilistic store (0/1 = single store).
	Shards int
	// IntegrateBatch caps the integration lanes' batch size (default 16).
	IntegrateBatch int
}

// WithConfig applies every field of a legacy Config as one option.
//
// Deprecated: pass the individual options instead.
func WithConfig(cfg Config) Option {
	return func(s *settings) {
		s.core.GazetteerNames = cfg.GazetteerNames
		s.core.GazetteerSeed = cfg.GazetteerSeed
		s.core.QueueWAL = cfg.QueueWAL
		s.core.Workers = cfg.Workers
		s.core.Shards = cfg.Shards
		s.core.IntegrateBatch = cfg.IntegrateBatch
	}
}

// NewFromConfig builds a System from a legacy Config.
//
// Deprecated: use New with functional options.
func NewFromConfig(cfg Config) (*System, error) {
	return New(WithConfig(cfg))
}
