// Command neogeod serves the neogeography system over HTTP — the
// deployment shape of the paper's vision, where contributions and
// questions arrive as network traffic from many users instead of a
// terminal stream. Contributions POSTed to /v1/messages are enqueued and
// integrated by a background drain loop running the concurrent pipeline;
// questions POSTed to /v1/ask are answered synchronously from the
// accumulated knowledge. See docs/API.md for the endpoint contract.
//
// With -wal and -data-dir the daemon is crash-safe: the queue WAL makes
// every accepted contribution durable, periodic checkpoints persist the
// integrated store, and a restart restores the newest valid checkpoint
// before replaying whatever the image does not cover. A graceful stop
// writes one final checkpoint before the WAL closes; after a SIGKILL the
// next boot re-integrates from the log instead.
//
// Observability: GET /metrics on the public listener serves the whole
// pipeline's Prometheus families; -debug-addr starts a second, private
// listener that adds net/http/pprof profiling and the /debug/traces
// flight-recorder view next to /metrics, so profiles and raw timelines
// never ride the public surface. -trace-recorder keeps the last N
// interesting request timelines queryable at GET /v1/traces/{id}
// (slow or errored traces always kept, plus 1-in--trace-sample of the
// rest; -trace-slow sets the slow bar, NEOGEO_TRACE_SLOW overrides
// it). -log-format/-log-level shape the structured log stream every
// subsystem writes to.
//
//	neogeod -addr :8080 -shards 4 -workers 8 \
//	    -wal /var/lib/neogeo/queue.wal -data-dir /var/lib/neogeo/data \
//	    -debug-addr 127.0.0.1:6060 -log-format json
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	neogeo "repro"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		debugAddr  = flag.String("debug-addr", "", "private debug listener for pprof + metrics (empty: off; bind loopback in production)")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		walPath    = flag.String("wal", "", "message-queue write-ahead log path (empty: in-memory)")
		dataDir    = flag.String("data-dir", "", "checkpoint directory for the integrated store (empty: store is not durable)")
		ckptEvery  = flag.Duration("checkpoint-interval", time.Minute, "background checkpoint period (requires -data-dir; 0 disables the loop)")
		ckptRetain = flag.Int("checkpoint-retain", 3, "checkpoint files kept after each write")
		names      = flag.Int("names", 2000, "synthetic gazetteer size")
		seed       = flag.Int64("seed", 2011, "gazetteer seed")
		shards     = flag.Int("shards", 1, "probabilistic store shard count")
		workers    = flag.Int("workers", 0, "pipeline worker-pool width (0 = GOMAXPROCS)")
		interval   = flag.Duration("drain-interval", 250*time.Millisecond, "background drain period")
		fbBatch    = flag.Int("feedback-batch", 16, "per-shard verdict count that triggers an immediate feedback apply (buffered verdicts also flush every drain interval)")
		decayEvery = flag.Duration("decay-interval", 0, "certainty-decay period (0: decay off)")
		decayFloor = flag.Float64("decay-floor", 0.05, "certainty below which a decayed record is deleted")
		ansCache   = flag.Int("answer-cache", 0, "answer-cache capacity in entries (0: every ask recomputes)")
		traceCap   = flag.Int("trace-recorder", 256, "span flight-recorder capacity in completed traces (0: tracing off)")
		traceSlow  = flag.Duration("trace-slow", time.Second, "always keep traces at least this slow (NEOGEO_TRACE_SLOW overrides)")
		traceN     = flag.Int("trace-sample", 0, "keep 1 in N ordinary traces (0: only slow/errored/explain traces kept)")
	)
	flag.Parse()
	if env := os.Getenv("NEOGEO_TRACE_SLOW"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			slog.Error("invalid NEOGEO_TRACE_SLOW", "value", env, "err", err)
			os.Exit(2)
		}
		*traceSlow = d
	}
	logger := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	slog.SetDefault(logger)
	if *dataDir == "" {
		// No data directory means nowhere to checkpoint: keep the
		// serving layer's loop off instead of failing every interval.
		*ckptEvery = 0
	}

	sys, err := neogeo.New(
		neogeo.WithGazetteerNames(*names),
		neogeo.WithGazetteerSeed(*seed),
		neogeo.WithQueueWAL(*walPath),
		neogeo.WithDataDir(*dataDir),
		neogeo.WithCheckpointInterval(*ckptEvery),
		neogeo.WithCheckpointRetain(*ckptRetain),
		neogeo.WithShards(*shards),
		neogeo.WithWorkers(*workers),
		neogeo.WithFeedbackBatch(*fbBatch),
		neogeo.WithAnswerCache(*ansCache),
		neogeo.WithTraceRecorder(*traceCap),
		neogeo.WithTraceSlowThreshold(*traceSlow),
		neogeo.WithTraceSampling(*traceN),
	)
	if err != nil {
		logger.Error("building system", "err", err)
		os.Exit(1)
	}
	defer sys.Close()

	srv := server.New(sys,
		server.WithDrainInterval(*interval),
		server.WithDecayInterval(*decayEvery),
		server.WithDecayFloor(*decayFloor),
		server.WithSlog(logger),
	)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	var debugSrv *http.Server
	if *debugAddr != "" {
		// The debug mux is assembled by hand rather than from
		// http.DefaultServeMux, so nothing else that registers there
		// leaks onto the listener, and pprof stays off the public mux
		// entirely.
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(obs.Default()))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/traces", obs.TracesHandler(obs.DefaultRecorder))
		debugSrv = &http.Server{Addr: *debugAddr, Handler: mux}
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		srv.Run(ctx)
	}()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
		if debugSrv != nil {
			_ = debugSrv.Shutdown(shutdownCtx)
		}
	}()

	logger.Info("neogeod listening", "addr", *addr, "shards", *shards, "drain_interval", *interval, "data_dir", *dataDir)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serving", "err", err)
		os.Exit(1)
	}
	// Let the drain loop finish its pass so accepted messages are not
	// stranded in flight before the WAL-backed queue closes.
	<-drainDone
	// The loop can exit with messages still pending (accepted between
	// its last tick and the signal); one final pass integrates them so
	// the shutdown checkpoint covers everything that was accepted.
	for _, err := range sys.Drain(context.Background(), 0) {
		if err != nil {
			logger.Error("final drain", "err", err)
		}
	}
	// Apply any feedback still buffered so the shutdown checkpoint
	// covers every accepted verdict (the ledger would replay them
	// anyway, but a clean stop should leave nothing to replay).
	if _, err := sys.FlushFeedback(context.Background()); err != nil {
		logger.Error("final feedback flush", "err", err)
	}
	// Final checkpoint, ordered after the drain wound down (the image
	// covers everything integrated) and before Close releases the WAL:
	// a graceful restart then recovers from the checkpoint alone.
	if *dataDir != "" {
		if info, err := sys.Checkpoint(context.Background()); err != nil {
			logger.Error("final checkpoint failed (the queue WAL still covers the gap)", "err", err)
		} else {
			logger.Info("final checkpoint written", "seq", info.Seq, "bytes", info.Bytes)
		}
	}
}
