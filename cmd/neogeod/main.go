// Command neogeod serves the neogeography system over HTTP — the
// deployment shape of the paper's vision, where contributions and
// questions arrive as network traffic from many users instead of a
// terminal stream. Contributions POSTed to /v1/messages are enqueued and
// integrated by a background drain loop running the concurrent pipeline;
// questions POSTed to /v1/ask are answered synchronously from the
// accumulated knowledge. See docs/API.md for the endpoint contract.
//
//	neogeod -addr :8080 -shards 4 -workers 8 -wal /var/lib/neogeo/queue.wal
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	neogeo "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		walPath  = flag.String("wal", "", "message-queue write-ahead log path (empty: in-memory)")
		names    = flag.Int("names", 2000, "synthetic gazetteer size")
		seed     = flag.Int64("seed", 2011, "gazetteer seed")
		shards   = flag.Int("shards", 1, "probabilistic store shard count")
		workers  = flag.Int("workers", 0, "pipeline worker-pool width (0 = GOMAXPROCS)")
		interval = flag.Duration("drain-interval", 250*time.Millisecond, "background drain period")
	)
	flag.Parse()

	sys, err := neogeo.New(
		neogeo.WithGazetteerNames(*names),
		neogeo.WithGazetteerSeed(*seed),
		neogeo.WithQueueWAL(*walPath),
		neogeo.WithShards(*shards),
		neogeo.WithWorkers(*workers),
	)
	if err != nil {
		log.Fatalf("building system: %v", err)
	}
	defer sys.Close()

	srv := server.New(sys, server.WithDrainInterval(*interval))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		srv.Run(ctx)
	}()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("neogeod listening on %s (shards=%d, drain every %s)", *addr, *shards, *interval)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serving: %v", err)
	}
	// Let the drain loop finish its pass so accepted messages are not
	// stranded in flight before the WAL-backed queue closes.
	<-drainDone
}
