// Command neogeo runs the full pipeline interactively: it reads messages
// from stdin (one per line, "source: message" or bare message), routes
// each through the Modules Coordinator, and prints classification,
// integration actions and answers — a terminal stand-in for the SMS
// gateway of the paper's deployment story. For the network-facing
// deployment, see cmd/neogeod.
//
//	echo "loved the Axel Hotel in Berlin" | neogeo
//	neogeo -wal /tmp/neogeo.wal < messages.txt
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	neogeo "repro"
)

func main() {
	var (
		walPath = flag.String("wal", "", "message-queue write-ahead log path (empty: in-memory)")
		names   = flag.Int("names", 2000, "synthetic gazetteer size")
		seed    = flag.Int64("seed", 2011, "gazetteer seed")
		stats   = flag.Bool("stats", false, "print system statistics on exit")
	)
	flag.Parse()

	sys, err := neogeo.New(
		neogeo.WithGazetteerNames(*names),
		neogeo.WithGazetteerSeed(*seed),
		neogeo.WithQueueWAL(*walPath),
	)
	if err != nil {
		log.Fatalf("building system: %v", err)
	}
	defer sys.Close()

	ctx := context.Background()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lineNo++
		source := fmt.Sprintf("stdin%03d", lineNo)
		body := line
		if i := strings.Index(line, ": "); i > 0 && !strings.Contains(line[:i], " ") {
			source, body = line[:i], line[i+2:]
		}
		out, err := sys.Ingest(ctx, body, source)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			continue
		}
		switch out.Type {
		case neogeo.TypeRequest:
			fmt.Printf("[%s request p=%.2f] %s\n", source, out.Probability, out.Answer.Text)
		default:
			fmt.Printf("[%s %s/%s p=%.2f] inserted=%d merged=%d\n",
				source, out.Type, orDash(out.Domain), out.Probability, out.Inserted, out.Merged)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("reading stdin: %v", err)
	}
	if *stats {
		st := sys.Stats()
		fmt.Fprintf(os.Stderr, "\ngazetteer: %d refs / %d names\n", st.GazetteerEntries, st.GazetteerNames)
		for coll, n := range st.Collections {
			fmt.Fprintf(os.Stderr, "%s: %d records\n", coll, n)
		}
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
