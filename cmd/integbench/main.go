// Command integbench runs two integration benchmarks.
//
// The default mode (-mode=e7) is experiment E7: uncertainty-aware
// probabilistic integration versus naive last-write-wins, measured as fact
// accuracy over stream length on a contradiction-laden report stream.
//
// The workload models the paper's core integration challenge ("the
// contradictions between the extracted information and the information
// previously extracted and stored in the probabilistic database"): a fixed
// population of hotels each has a ground-truth user attitude; reliable
// sources report the truth, while a minority of systematically unreliable
// sources report its opposite. The probabilistic DI service pools attitude
// distributions weighted by learned source trust; the naive service simply
// overwrites with each arriving report.
//
// Output is a TSV series: stream position, probabilistic accuracy, naive
// accuracy — EXPERIMENTS.md §E7 records a reference run.
//
// -mode=parallel measures end-to-end pipeline throughput instead: one
// synthetic tweet stream — generated once from -seed, so every
// configuration drains the identical message sequence — is queued and
// drained once per (worker count × shard count) configuration through
// the coordinator's pipeline, reporting msgs/sec, the speedup over the
// first configuration, per-shard record balance and queue health
// (acked/dead-lettered). -shards partitions the probabilistic store with
// one integration lane per shard (sequential mode routes to shards too,
// without lane parallelism). With -wal (default true) the queue is
// backed by a write-ahead log, the production configuration whose
// per-message fsync the integration lanes amortize via group-committed
// acknowledgements.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"context"

	"repro/internal/coordinator"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/gazetteer"
	"repro/internal/integrate"
	"repro/internal/kb"
	"repro/internal/pxml"
	"repro/internal/tweetgen"
	"repro/internal/uncertain"
	"repro/internal/xmldb"
)

func main() {
	var (
		mode     = flag.String("mode", "e7", "benchmark: e7 (accuracy) or parallel (throughput)")
		hotels   = flag.Int("hotels", 40, "distinct entities with a ground-truth attitude (e7)")
		msgs     = flag.Int("n", 1200, "total reports in the stream")
		step     = flag.Int("step", 100, "measurement interval (e7)")
		liarRate = flag.Float64("liars", 0.3, "fraction of reports from unreliable sources (e7)")
		seed     = flag.Int64("seed", 2011, "deterministic stream seed: every mode and configuration replays the identical stream for this value")
		workers  = flag.String("workers", "0,1,4,8", "comma-separated worker counts; 0 = sequential drain (parallel)")
		shards   = flag.String("shards", "1", "comma-separated shard counts for the probabilistic store (parallel)")
		noise    = flag.Float64("noise", 0.4, "tweet-stream noise level (parallel)")
		reqRatio = flag.Float64("requests", 0.2, "fraction of request messages (parallel)")
		gazNames = flag.Int("gaznames", 2000, "synthetic gazetteer size (parallel)")
		useWAL   = flag.Bool("wal", true, "back the queue with a write-ahead log (parallel)")
	)
	flag.Parse()

	if *mode == "parallel" {
		if err := runParallel(*msgs, *seed, *noise, *reqRatio, *gazNames, *useWAL, *workers, *shards); err != nil {
			log.Fatal(err)
		}
		return
	}

	names := hotelNames(*hotels)
	truth := make([]string, *hotels)
	for i := range truth {
		if i%2 == 0 {
			truth[i] = "Positive"
		} else {
			truth[i] = "Negative"
		}
	}

	probDB, naiveDB := xmldb.New(), xmldb.New()
	prob, err := integrate.NewService(kb.New(), probDB)
	if err != nil {
		log.Fatalf("probabilistic DI: %v", err)
	}
	naive, err := integrate.NewService(kb.New(), naiveDB)
	if err != nil {
		log.Fatalf("naive DI: %v", err)
	}

	rng := rand.New(rand.NewSource(*seed))
	now := time.Unix(1_300_000_000, 0)

	fmt.Println("stream_len\tprobabilistic_acc\tnaive_acc")
	for sent := 1; sent <= *msgs; sent++ {
		h := rng.Intn(*hotels)
		liar := rng.Float64() < *liarRate
		reported := truth[h]
		source := fmt.Sprintf("citizen%d", rng.Intn(12))
		if liar {
			reported = opposite(truth[h])
			source = fmt.Sprintf("troll%d", rng.Intn(3))
		}
		tpl := reportTemplate(names[h], reported, source, now.Add(time.Duration(sent)*time.Minute))
		if _, err := prob.Integrate(tpl); err != nil {
			log.Fatalf("integrate: %v", err)
		}
		if _, err := naive.IntegrateNaive(tpl); err != nil {
			log.Fatalf("integrate naive: %v", err)
		}
		if sent%*step == 0 {
			fmt.Printf("%d\t%.3f\t%.3f\n",
				sent, accuracy(probDB, names, truth), accuracy(naiveDB, names, truth))
		}
	}
}

func opposite(att string) string {
	if att == "Positive" {
		return "Negative"
	}
	return "Positive"
}

// reportTemplate builds the extraction template one report would produce:
// the reported attitude carried as a distribution leaning 0.9/0.1 toward
// the reported value, as the sentiment scorer does for a clear opinion.
func reportTemplate(hotel, attitude, source string, at time.Time) extract.Template {
	d := uncertain.NewDist()
	_ = d.Add(attitude, 0.9)
	_ = d.Add(opposite(attitude), 0.1)
	return extract.Template{
		Domain:    "tourism",
		RecordTag: "Hotel",
		Fields: map[string]extract.FieldValue{
			"Hotel_Name":    {Kind: kb.FieldText, Text: hotel, CF: 0.9},
			"City":          {Kind: kb.FieldText, Text: "Berlin", CF: 0.8},
			"User_Attitude": {Kind: kb.FieldAttitude, Dist: d, CF: 0.8},
		},
		Certainty: 0.5,
		Source:    source,
		Extracted: at,
	}
}

// accuracy is the fraction of ground-truth entities whose stored attitude
// distribution ranks the true value first. Entities not yet reported count
// as wrong, so early accuracy climbs as coverage grows.
func accuracy(db *xmldb.DB, names, truth []string) float64 {
	correct := 0
	for i, want := range truth {
		if storedTop(db, names[i]) == want {
			correct++
		}
	}
	return float64(correct) / float64(len(truth))
}

// hotelNames builds n mutually dissimilar entity names, so duplicate
// detection (name similarity >= 0.75) keeps them apart — the experiment
// measures conflict resolution, not entity resolution.
func hotelNames(n int) []string {
	first := []string{"Azure", "Bravado", "Crimson", "Dunmore", "Elysian", "Falcon",
		"Gilded", "Harbour", "Ivory", "Juniper", "Kestrel", "Lakeside",
		"Meridian", "Northgate", "Opal", "Paragon"}
	second := []string{"Palace", "Lodge", "Retreat", "Towers", "Courtyard", "Manor",
		"Pavilion", "Terrace", "Springs", "Villa", "Quarters", "Haven"}
	names := make([]string, 0, n)
	for i := 0; len(names) < n; i++ {
		names = append(names, first[i%len(first)]+" "+second[(i/len(first)+i)%len(second)])
	}
	return names
}

// runParallel replays one synthetic tweet stream through the full
// MQ -> MC -> IE -> DI pipeline once per drain configuration and reports
// throughput. The stream is generated exactly once from -seed and every
// (workers × shards) configuration gets a fresh system fed that same
// slice (same gazetteer too), so sequential, concurrent and sharded runs
// compare identical inputs; submission is not timed — the measurement is
// the drain, which is where acknowledgement durability, integration
// batching and shard-lane parallelism live.
func runParallel(n int, seed int64, noise, reqRatio float64, gazNames int, useWAL bool, workerList, shardList string) error {
	gaz, err := gazetteer.Synthesize(gazetteer.Config{Names: gazNames, Seed: 2011})
	if err != nil {
		return fmt.Errorf("synthesising gazetteer: %w", err)
	}
	gen, err := tweetgen.New(tweetgen.Config{
		Seed: seed, Noise: noise, Domain: tweetgen.DomainMixed, RequestRatio: reqRatio,
	})
	if err != nil {
		return fmt.Errorf("tweet stream: %w", err)
	}
	stream := gen.Generate(n)

	parseCounts := func(list, flagName string, min int) ([]int, error) {
		var out []int
		for _, f := range strings.Split(list, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < min {
				return nil, fmt.Errorf("bad %s entry %q", flagName, f)
			}
			out = append(out, v)
		}
		return out, nil
	}
	workerCounts, err := parseCounts(workerList, "-workers", 0)
	if err != nil {
		return err
	}
	shardCounts, err := parseCounts(shardList, "-shards", 1)
	if err != nil {
		return err
	}

	tmp, err := os.MkdirTemp("", "integbench-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	fmt.Printf("# parallel drain: %d msgs, seed=%d, noise=%.1f, requests=%.1f, wal=%v\n",
		n, seed, noise, reqRatio, useWAL)
	fmt.Println("config\tmsgs\tseconds\tmsgs_per_sec\tspeedup\tshard_balance")
	var baseline float64
	run := 0
	for _, w := range workerCounts {
		for _, nshards := range shardCounts {
			cfg := core.Config{Gazetteer: gaz, Workers: w, Shards: nshards, IntegrateBatch: 16}
			if w == 0 {
				cfg.Workers = 1 // sequential drain below; width is unused
			}
			if useWAL {
				cfg.QueueWAL = filepath.Join(tmp, fmt.Sprintf("queue-%d.wal", run))
			}
			sys, err := core.New(cfg)
			if err != nil {
				return err
			}
			for _, m := range stream {
				if _, err := sys.Submit(m.Text, m.Source); err != nil {
					sys.Close()
					return err
				}
			}
			label := "sequential"
			if w != 0 {
				label = fmt.Sprintf("workers=%d", w)
			}
			if nshards > 1 {
				label += fmt.Sprintf("/shards=%d", nshards)
			}
			start := time.Now()
			var outs []*coordinator.Outcome
			var errs []error
			if w == 0 {
				outs, errs = sys.MC.Drain(0)
			} else {
				outs, errs = sys.ProcessConcurrent(context.Background(), 0)
			}
			elapsed := time.Since(start).Seconds()
			balance := sys.Store.Balance()
			qstats := sys.Queue.Stats()
			sys.Close()
			if len(errs) > 0 {
				return fmt.Errorf("%s: %d drain errors (first: %v)", label, len(errs), errs[0])
			}
			if len(outs) != n {
				return fmt.Errorf("%s: drained %d of %d messages", label, len(outs), n)
			}
			if qstats.Acked != n || qstats.DeadLettered != 0 {
				return fmt.Errorf("%s: queue health acked=%d dead=%d, want %d acked",
					label, qstats.Acked, qstats.DeadLettered, n)
			}
			rate := float64(n) / elapsed
			// Speedup is relative to the first configuration in the list
			// (conventionally 0 = sequential, but any list works).
			if run == 0 {
				baseline = rate
			}
			run++
			speedup := rate / baseline
			fmt.Printf("%s\t%d\t%.3f\t%.0f\t%.2fx\t%s\n",
				label, n, elapsed, rate, speedup, balanceString(balance))
		}
	}
	return nil
}

// balanceString renders per-shard record counts compactly: "512" for a
// single store, "[130 128 125 131]" for a sharded one.
func balanceString(balance []int) string {
	if len(balance) == 1 {
		return strconv.Itoa(balance[0])
	}
	parts := make([]string, len(balance))
	for i, n := range balance {
		parts[i] = strconv.Itoa(n)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func storedTop(db *xmldb.DB, hotel string) string {
	var top string
	db.Each("Hotels", func(r *xmldb.Record) bool {
		for _, m := range pxml.FindAll(r.Doc, "/Hotel/Hotel_Name") {
			if m.Node.TextContent() != hotel {
				continue
			}
			for _, f := range pxml.FindAll(r.Doc, "/Hotel/User_Attitude") {
				if alt, ok := extract.MuxToDist(f.Node).Top(); ok {
					top = alt.Name
				}
			}
			return false
		}
		return true
	})
	return top
}
