// Command integbench runs two integration benchmarks (the workloads live
// in internal/benchkit, below the public facade, because they measure
// internal services the stable API does not expose).
//
// The default mode (-mode=e7) is experiment E7: uncertainty-aware
// probabilistic integration versus naive last-write-wins, measured as fact
// accuracy over stream length on a contradiction-laden report stream.
// Output is a TSV series: stream position, probabilistic accuracy, naive
// accuracy — EXPERIMENTS.md §E7 records a reference run.
//
// -mode=parallel measures end-to-end pipeline throughput instead: one
// synthetic tweet stream — generated once from -seed, so every
// configuration drains the identical message sequence — is queued and
// drained once per (worker count × shard count) configuration through
// the coordinator's pipeline, reporting msgs/sec, the speedup over the
// first configuration, per-shard record balance and queue health
// (acked/dead-lettered).
//
// -mode=readheavy replays a serving mix — questions and reports
// interleaved at -ask-ratio — twice, with the shard-versioned answer
// cache off and then on (-cache entries), reporting throughput, mean ask
// latency and the cache hit rate. EXPERIMENTS.md §E15 records a
// reference run.
package main

import (
	"context"
	"flag"
	"log"
	"os"

	"repro/internal/benchkit"
)

func main() {
	var (
		mode     = flag.String("mode", "e7", "benchmark: e7 (accuracy) or parallel (throughput)")
		hotels   = flag.Int("hotels", 40, "distinct entities with a ground-truth attitude (e7)")
		msgs     = flag.Int("n", 1200, "total reports in the stream")
		step     = flag.Int("step", 100, "measurement interval (e7)")
		liarRate = flag.Float64("liars", 0.3, "fraction of reports from unreliable sources (e7)")
		seed     = flag.Int64("seed", 2011, "deterministic stream seed: every mode and configuration replays the identical stream for this value")
		workers  = flag.String("workers", "0,1,4,8", "comma-separated worker counts; 0 = sequential drain (parallel)")
		shards   = flag.String("shards", "1", "comma-separated shard counts for the probabilistic store (parallel)")
		noise    = flag.Float64("noise", 0.4, "tweet-stream noise level (parallel)")
		reqRatio = flag.Float64("requests", 0.2, "fraction of request messages (parallel)")
		gazNames = flag.Int("gaznames", 2000, "synthetic gazetteer size (parallel, readheavy)")
		useWAL   = flag.Bool("wal", true, "back the queue with a write-ahead log (parallel)")
		askRatio = flag.Float64("ask-ratio", 0.9, "fraction of ask operations in the serving mix (readheavy)")
		cache    = flag.Int("cache", 256, "answer-cache capacity for the cached run (readheavy)")
		rhWork   = flag.Int("drain-workers", 4, "pipeline worker-pool width (readheavy)")
		rhShards = flag.Int("store-shards", 4, "probabilistic store shard count (readheavy)")
	)
	flag.Parse()

	switch *mode {
	case "parallel":
		err := benchkit.Parallel(context.Background(), benchkit.ParallelConfig{
			Messages:       *msgs,
			Seed:           *seed,
			Noise:          *noise,
			RequestRatio:   *reqRatio,
			GazetteerNames: *gazNames,
			UseWAL:         *useWAL,
			Workers:        *workers,
			Shards:         *shards,
		}, os.Stdout)
		if err != nil {
			log.Fatal(err)
		}
	case "e7":
		err := benchkit.E7(benchkit.E7Config{
			Hotels:   *hotels,
			Messages: *msgs,
			Step:     *step,
			LiarRate: *liarRate,
			Seed:     *seed,
		}, os.Stdout)
		if err != nil {
			log.Fatal(err)
		}
	case "readheavy":
		err := benchkit.ReadHeavy(context.Background(), benchkit.ReadHeavyConfig{
			Ops:            *msgs,
			AskRatio:       *askRatio,
			Seed:           *seed,
			Noise:          *noise,
			GazetteerNames: *gazNames,
			Workers:        *rhWork,
			Shards:         *rhShards,
			Cache:          *cache,
		}, os.Stdout)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -mode %q (want e7, parallel or readheavy)", *mode)
	}
}
