// Command disambench runs experiment E6: geographic-name disambiguation
// accuracy as a function of ambiguity degree, comparing the population-
// prior baseline against the full context-aware resolver (RQ2c/RQ2d).
//
// The workload samples ambiguous names from the calibrated gazetteer,
// picks a gold reference uniformly at random, and gives the resolver a
// co-occurring toponym drawn near the gold reference — the kind of
// context a real message carries.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/disambig"
	"repro/internal/gazetteer"
	"repro/internal/ontology"
)

func main() {
	var (
		trials = flag.Int("trials", 2000, "disambiguation trials")
		seed   = flag.Int64("seed", 2011, "seed")
		names  = flag.Int("names", 10000, "gazetteer size (distinct names)")
	)
	flag.Parse()

	gaz, err := gazetteer.Synthesize(gazetteer.Config{Names: *names, Seed: *seed})
	if err != nil {
		log.Fatalf("gazetteer: %v", err)
	}
	ont := ontology.New()
	ont.LoadContainment(gaz)
	resolver := disambig.NewResolver(gaz, ont)
	rng := rand.New(rand.NewSource(*seed))

	// Collect names by ambiguity bucket.
	type sample struct {
		name string
		gold *gazetteer.Entry
	}
	buckets := map[string][]sample{}
	bucketOf := func(d int) string {
		switch {
		case d <= 1:
			return "1"
		case d <= 3:
			return "2-3"
		case d <= 10:
			return "4-10"
		case d <= 100:
			return "11-100"
		default:
			return ">100"
		}
	}
	names2entries := map[string][]*gazetteer.Entry{}
	gaz.EachEntry(func(e *gazetteer.Entry) bool {
		names2entries[e.NormName] = append(names2entries[e.NormName], e)
		return true
	})
	for name, entries := range names2entries {
		if len(entries) < 2 {
			continue
		}
		b := bucketOf(len(entries))
		buckets[b] = append(buckets[b], sample{name: name, gold: entries[rng.Intn(len(entries))]})
	}

	fmt.Println("ambiguity\ttrials\tprior_only_acc\tcontext_acc")
	for _, b := range []string{"2-3", "4-10", "11-100", ">100"} {
		pool := buckets[b]
		if len(pool) == 0 {
			continue
		}
		n := *trials / 4
		var priorOK, ctxOK int
		for i := 0; i < n; i++ {
			s := pool[rng.Intn(len(pool))]
			// Context: a co-toponym within 100 km of the gold reference.
			co := gaz.Near(s.gold.Location, 100000)
			var coSet [][]*gazetteer.Entry
			for _, c := range co {
				if c.NormName != s.name {
					coSet = append(coSet, []*gazetteer.Entry{c})
					break
				}
			}
			prior, err := resolver.ResolvePriorOnly(s.name)
			if err != nil {
				log.Fatal(err)
			}
			if best, ok := prior.Best(); ok && best.Entry.ID == s.gold.ID {
				priorOK++
			}
			ctx, err := resolver.Resolve(s.name, disambig.Context{
				CoToponyms: coSet,
				Anchor:     nil,
			})
			if err != nil {
				log.Fatal(err)
			}
			if best, ok := ctx.Best(); ok && best.Entry.ID == s.gold.ID {
				ctxOK++
			}
		}
		fmt.Printf("%s\t%d\t%.3f\t%.3f\n", b, n, float64(priorOK)/float64(n), float64(ctxOK)/float64(n))
	}
}
