package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

// vetConfig mirrors the JSON cmd/go writes next to each package when
// driving a -vettool (see buildVetConfig in cmd/go/internal/work).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes the single package described by the vet.cfg file,
// following the vettool protocol: diagnostics to stderr, exit 2 when
// there are findings, and always publish the (empty — the analyzers
// exchange no facts) vetx output so cmd/go can cache the result.
func runVet(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("neogeolint: parsing %s: %w", cfgPath, err))
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("neogeolint-facts v1\n"), 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return // dependency pass: facts only, and we have none
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		return // only gc export data is readable here
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("neogeolint: no export data for %q", path)
		}
		return os.Open(file)
	}

	var files []string
	dir := cfg.Dir
	for _, f := range cfg.GoFiles {
		files = append(files, filepath.Base(f))
		dir = filepath.Dir(f)
	}
	fset := token.NewFileSet()
	pkg, err := analysis.TypecheckFiles(fset, cfg.ImportPath, dir, files, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(err)
	}
	diags, err := analysis.RunPackages([]*analysis.Package{pkg}, analyzers())
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, analysis.Format(fset, d))
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
