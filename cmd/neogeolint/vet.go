package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// vetConfig mirrors the JSON cmd/go writes next to each package when
// driving a -vettool (see buildVetConfig in cmd/go/internal/work).
// PackageVetx maps each dependency's import path to the .vetx fact
// file that dependency's vet run produced; VetxOutput is where this
// run must publish its own.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes the single package described by the vet.cfg file,
// following the vettool protocol: decode the dependencies' facts from
// their .vetx files, run the suite (facts are computed even on
// VetxOnly dependency passes — only diagnostics are suppressed), write
// the accumulated fact set to VetxOutput for dependents, print
// diagnostics to stderr, and exit 2 when there are findings.
func runVet(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("neogeolint: parsing %s: %w", cfgPath, err))
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		publishFacts(cfg.VetxOutput, analysis.NewFactSet())
		return // only gc export data is readable here
	}

	// Rehydrate facts exported by dependencies. Unknown fact names
	// (from a different tool version) are skipped by Decode.
	facts := analysis.NewFactSet()
	prototypes := factPrototypes()
	for _, vetx := range cfg.PackageVetx {
		raw, err := os.ReadFile(vetx)
		if err != nil {
			continue // missing dependency facts degrade, not fail
		}
		if err := facts.Decode(raw, prototypes); err != nil {
			fatal(fmt.Errorf("neogeolint: decoding facts %s: %w", vetx, err))
		}
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("neogeolint: no export data for %q", path)
		}
		return os.Open(file)
	}

	var files []string
	dir := cfg.Dir
	for _, f := range cfg.GoFiles {
		files = append(files, filepath.Base(f))
		dir = filepath.Dir(f)
	}
	fset := token.NewFileSet()
	pkg, err := analysis.TypecheckFiles(fset, cfg.ImportPath, dir, files, lookup)
	if err != nil {
		// Outside the module the suite has nothing to say, and cgo
		// dependencies (runtime/cgo, net) list generated files that do
		// not exist when the build cache is warm — degrade to an empty
		// result rather than failing the whole vet run.
		if cfg.SucceedOnTypecheckFailure || !inModule(cfg.ImportPath) {
			publishFacts(cfg.VetxOutput, facts)
			return
		}
		fatal(err)
	}
	diags, err := analysis.RunPackagesWithFacts([]*analysis.Package{pkg}, analyzers(), facts)
	if err != nil {
		fatal(err)
	}
	publishFacts(cfg.VetxOutput, facts)
	if cfg.VetxOnly {
		return // dependency pass: facts published, diagnostics are not wanted
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, analysis.Format(fset, d))
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// publishFacts writes the fact set where cmd/go expects it so the
// result is cacheable and dependents can import the facts.
func publishFacts(path string, facts *analysis.FactSet) {
	if path == "" {
		return
	}
	data, err := facts.Encode()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fatal(err)
	}
}

// inModule reports whether the import path belongs to this project's
// module; only those packages must analyze cleanly.
func inModule(path string) bool {
	return path == "repro" || strings.HasPrefix(path, "repro/")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// factPrototypes collects every fact type the suite (including its
// required analyzers) can produce, for decoding dependency .vetx
// files.
func factPrototypes() []analysis.Fact {
	var protos []analysis.Fact
	seen := make(map[*analysis.Analyzer]bool)
	var visit func(a *analysis.Analyzer)
	visit = func(a *analysis.Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		protos = append(protos, a.FactTypes...)
		for _, dep := range a.Requires {
			visit(dep)
		}
	}
	for _, a := range analyzers() {
		visit(a)
	}
	return protos
}
