// Command neogeolint is the project's invariant checker: a
// multichecker driving the analyzers under internal/analysis/passes
// over the module. It runs two ways:
//
//	neogeolint ./...                      # standalone, from the module root
//	go vet -vettool=$(which neogeolint) ./...  # inside the go vet cache
//
// Standalone mode loads packages via `go list -export` and prints
// findings to stdout (exit 1 when there are any; -json emits them as a
// machine-readable array; -artifact writes that array to a file even
// when the tree is clean, which CI uploads on every run). Vet mode
// speaks cmd/go's vettool protocol: answer -V=full with a stable
// version line, read the vet.cfg the go command supplies, analyze that
// one package against the export data in the config, exchange
// cross-package facts through the .vetx files cmd/go shuttles between
// packages, and exit nonzero on findings.
//
// -baseline accepts a findings file (the -json / -artifact shape) and
// suppresses every finding already in it, so a newly adopted analyzer
// can gate new violations before the old ones are paid down. Matching
// is by analyzer, file, and message — line-independent, so unrelated
// edits above a known finding do not resurface it.
//
// Suppress a single finding with a justified directive on or above the
// line:
//
//	//lint:ignore atomicwrite scratch file, durability not required
//
// An ignore directive that matches no finding is itself reported:
// stale suppressions hide nothing and rot.
//
// See docs/INVARIANTS.md for the invariant each analyzer pins.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// version identifies the tool to cmd/go's -V=full handshake; bump it
// to invalidate go vet's result cache after changing an analyzer.
// v2.0.0: dataflow engine (inspect/lockspan), facts, and the
// versionbump/postcommit/lockdiscipline/metriclabels analyzers.
const version = "v2.0.0"

func analyzers() []*analysis.Analyzer {
	return suite.Analyzers()
}

func main() {
	// cmd/go probes the tool's identity before first use, and asks for
	// its flag set (as a JSON array) so `go vet` can accept and forward
	// tool flags on its own command line.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "-V":
			// The output is cmd/go's cache key for vet results: include a
			// content hash of the binary so a rebuilt tool with changed
			// analyzers invalidates stale cached findings even when the
			// human-facing version string was not bumped.
			fmt.Printf("neogeolint version %s build %s\n", version, selfHash())
			return
		case "-flags":
			type flagDesc struct {
				Name  string
				Bool  bool
				Usage string
			}
			out, err := json.Marshal([]flagDesc{
				{Name: "json", Bool: true, Usage: "emit findings as JSON on stdout"},
				{Name: "list", Bool: true, Usage: "list analyzers and exit"},
				{Name: "baseline", Usage: "findings file of accepted violations; fail only on new ones"},
				{Name: "artifact", Usage: "write findings JSON to this file, clean runs included"},
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Printf("%s\n", out)
			return
		}
	}

	fs := flag.NewFlagSet("neogeolint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	list := fs.Bool("list", false, "list analyzers and exit")
	baseline := fs.String("baseline", "", "findings file of accepted violations; fail only on new ones")
	artifact := fs.String("artifact", "", "write findings JSON to this file, clean runs included")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: neogeolint [-json] [-baseline file] [-artifact file] [packages]\n       go vet -vettool=neogeolint [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(fs.Output(), "  %-15s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVet(args[0])
		return
	}
	runStandalone(args, *jsonOut, *baseline, *artifact)
}

// selfHash fingerprints the running executable for the -V=full
// handshake.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// finding is the JSON shape of one diagnostic — also the baseline and
// artifact file format.
type finding struct {
	Position string `json:"position"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// key is the line-independent identity used for baseline matching.
func (f finding) key() string {
	file := f.Position
	if i := strings.IndexByte(file, ':'); i >= 0 {
		file = file[:i]
	}
	return f.Analyzer + "|" + file + "|" + f.Message
}

// toFinding renders a diagnostic with a working-directory-relative
// position, so baselines written on one checkout match another.
func toFinding(fset *token.FileSet, d analysis.Diagnostic) finding {
	pos := fset.Position(d.Pos)
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
	}
	return finding{Position: pos.String(), Analyzer: d.Analyzer, Message: d.Message}
}

// loadBaseline reads an accepted-findings file into a key set.
func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var known []finding
	if err := json.Unmarshal(data, &known); err != nil {
		return nil, fmt.Errorf("neogeolint: parsing baseline %s: %w", path, err)
	}
	keys := make(map[string]bool, len(known))
	for _, f := range known {
		keys[f.key()] = true
	}
	return keys, nil
}

func runStandalone(patterns []string, jsonOut bool, baselinePath, artifactPath string) {
	pkgs, err := analysis.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := analysis.RunPackages(pkgs, analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fset := pkgs[0].Fset

	findings := []finding{} // empty array, not null, when clean
	for _, d := range diags {
		findings = append(findings, toFinding(fset, d))
	}

	if baselinePath != "" {
		known, err := loadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fresh := findings[:0]
		suppressed := 0
		for _, f := range findings {
			if known[f.key()] {
				suppressed++
				continue
			}
			fresh = append(fresh, f)
		}
		findings = fresh
		if suppressed > 0 && !jsonOut {
			fmt.Fprintf(os.Stderr, "neogeolint: %d baseline finding(s) suppressed\n", suppressed)
		}
	}

	if artifactPath != "" {
		data, err := json.MarshalIndent(findings, "", "  ")
		if err == nil {
			err = os.WriteFile(artifactPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s: %s (%s)\n", f.Position, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "neogeolint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}
