// Command neogeolint is the project's invariant checker: a
// multichecker driving the analyzers under internal/analysis/passes
// over the module. It runs two ways:
//
//	neogeolint ./...                      # standalone, from the module root
//	go vet -vettool=$(which neogeolint) ./...  # inside the go vet cache
//
// Standalone mode loads packages via `go list -export` and prints
// findings to stdout (exit 1 when there are any; -json emits them as a
// machine-readable array, which CI uploads as an artifact). Vet mode
// speaks cmd/go's vettool protocol: answer -V=full with a stable
// version line, read the vet.cfg the go command supplies, analyze that
// one package against the export data in the config, and exit nonzero
// on findings.
//
// Suppress a finding with a justified directive on or above the line:
//
//	//lint:ignore atomicwrite scratch file, durability not required
//
// See docs/INVARIANTS.md for the invariant each analyzer pins.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/atomicwrite"
	"repro/internal/analysis/passes/ctxflow"
	"repro/internal/analysis/passes/errdiscipline"
	"repro/internal/analysis/passes/importboundary"
	"repro/internal/analysis/passes/singlewriter"
)

// version identifies the tool to cmd/go's -V=full handshake; bump it
// to invalidate go vet's result cache after changing an analyzer.
const version = "v1.0.0"

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicwrite.Analyzer,
		ctxflow.Analyzer,
		errdiscipline.Analyzer,
		importboundary.Analyzer,
		singlewriter.Analyzer,
	}
}

func main() {
	// cmd/go probes the tool's identity before first use, and asks for
	// its flag set (as a JSON array) so `go vet` can accept and forward
	// tool flags on its own command line.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "-V":
			fmt.Printf("neogeolint version %s\n", version)
			return
		case "-flags":
			type flagDesc struct {
				Name  string
				Bool  bool
				Usage string
			}
			out, err := json.Marshal([]flagDesc{
				{Name: "json", Bool: true, Usage: "emit findings as JSON on stdout"},
				{Name: "list", Bool: true, Usage: "list analyzers and exit"},
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Printf("%s\n", out)
			return
		}
	}

	fs := flag.NewFlagSet("neogeolint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: neogeolint [-json] [packages]\n       go vet -vettool=neogeolint [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(fs.Output(), "  %-15s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVet(args[0])
		return
	}
	runStandalone(args, *jsonOut)
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	Position string `json:"position"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func runStandalone(patterns []string, jsonOut bool) {
	pkgs, err := analysis.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := analysis.RunPackages(pkgs, analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if jsonOut {
		out := []finding{} // empty array, not null, when clean
		for _, d := range diags {
			var fset = pkgs[0].Fset
			out = append(out, finding{
				Position: fset.Position(d.Pos).String(),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(analysis.Format(pkgs[0].Fset, d))
		}
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "neogeolint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
