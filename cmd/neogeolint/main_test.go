package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestBaselineKeyIsLineIndependent pins the matching contract: a
// finding that moves to a different line (edits above it) still
// matches its baseline entry, while a different message or file does
// not.
func TestBaselineKeyIsLineIndependent(t *testing.T) {
	old := finding{Position: "internal/xmldb/db.go:240:4", Analyzer: "versionbump", Message: "m"}
	moved := finding{Position: "internal/xmldb/db.go:267:9", Analyzer: "versionbump", Message: "m"}
	if old.key() != moved.key() {
		t.Errorf("keys differ across lines: %q vs %q", old.key(), moved.key())
	}
	otherMsg := finding{Position: "internal/xmldb/db.go:240:4", Analyzer: "versionbump", Message: "other"}
	if old.key() == otherMsg.key() {
		t.Error("different messages must not share a key")
	}
	otherFile := finding{Position: "internal/xmldb/snapshot.go:240:4", Analyzer: "versionbump", Message: "m"}
	if old.key() == otherFile.key() {
		t.Error("different files must not share a key")
	}
}

// TestLoadBaseline round-trips the artifact shape through the
// baseline loader.
func TestLoadBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	blob := `[
  {"position": "a/b.go:10:2", "analyzer": "ctxflow", "message": "msg one"},
  {"position": "a/b.go:20:2", "analyzer": "atomicwrite", "message": "msg two"}
]`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("got %d keys, want 2", len(keys))
	}
	probe := finding{Position: "a/b.go:99:1", Analyzer: "ctxflow", Message: "msg one"}
	if !keys[probe.key()] {
		t.Errorf("baseline does not match same finding on a new line: %q", probe.key())
	}
	fresh := finding{Position: "a/b.go:10:2", Analyzer: "ctxflow", Message: "brand new"}
	if keys[fresh.key()] {
		t.Error("baseline must not match a new message")
	}
}

// TestLoadBaselineRejectsGarbage: a corrupt baseline is an error, not
// an empty allowlist that would silently re-fail on every accepted
// finding.
func TestLoadBaselineRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(path); err == nil {
		t.Error("expected an error for a corrupt baseline file")
	}
}
