// Command geostats regenerates the paper's quantitative artifacts from
// the calibrated synthetic gazetteer:
//
//	geostats -table1    Table 1: the ten most ambiguous geographic names
//	geostats -fig1      Figure 1: names per ambiguity degree (log-log series)
//	geostats -fig2      Figure 2: share of names by reference count
//	geostats -all       everything (default)
//
// Flags -names and -seed control the synthetic gazetteer; the defaults
// match the experiment harness (see EXPERIMENTS.md E1-E3).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/gazetteer"
)

func main() {
	var (
		table1 = flag.Bool("table1", false, "print the Table 1 reproduction")
		fig1   = flag.Bool("fig1", false, "print the Figure 1 series")
		fig2   = flag.Bool("fig2", false, "print the Figure 2 shares")
		all    = flag.Bool("all", false, "print everything")
		names  = flag.Int("names", 20000, "distinct generated names")
		seed   = flag.Int64("seed", 2011, "generation seed")
		topN   = flag.Int("top", 10, "rows for -table1")
	)
	flag.Parse()
	if !*table1 && !*fig1 && !*fig2 {
		*all = true
	}

	g, err := gazetteer.Synthesize(gazetteer.Config{Names: *names, Seed: *seed})
	if err != nil {
		log.Fatalf("synthesising gazetteer: %v", err)
	}
	fmt.Printf("# synthetic gazetteer: %d references across %d distinct names (seed %d)\n\n",
		g.Len(), g.NameCount(), *seed)

	if *all || *table1 {
		fmt.Println("== Table 1: most ambiguous geographic names ==")
		if err := g.WriteTable1(os.Stdout, *topN); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *fig1 {
		fmt.Println("== Figure 1: names per ambiguity degree ==")
		if err := g.WriteFigure1(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *fig2 {
		fmt.Println("== Figure 2: share of names by reference count ==")
		if err := g.WriteFigure2(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
