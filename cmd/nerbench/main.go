// Command nerbench runs experiment E5: traditional (capitalisation/POS)
// versus informal (gazetteer+ontology+context) named-entity recognition
// across a noise sweep, printing precision/recall/F1 per noise level —
// the quantitative form of the paper's RQ1/RQ2a claim that existing IE
// collapses on ill-behaved text.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/gazetteer"
	"repro/internal/ner"
	"repro/internal/ontology"
	"repro/internal/tweetgen"
)

func main() {
	var (
		n     = flag.Int("n", 400, "messages per noise level")
		seed  = flag.Int64("seed", 2011, "generation seed")
		names = flag.Int("names", 5000, "gazetteer size (distinct names)")
	)
	flag.Parse()

	gaz, err := gazetteer.Synthesize(gazetteer.Config{Names: *names, Seed: *seed})
	if err != nil {
		log.Fatalf("gazetteer: %v", err)
	}
	ont := ontology.New()
	ont.LoadContainment(gaz)
	x := ner.NewExtractor(gaz, ont)

	fmt.Println("noise\tsystem\tprecision\trecall\tf1")
	for _, noise := range []float64{0, 0.25, 0.5, 0.75, 1} {
		g, err := tweetgen.New(tweetgen.Config{
			Seed: *seed, Noise: noise, Domain: tweetgen.DomainTourism, RequestRatio: 0.01,
		})
		if err != nil {
			log.Fatal(err)
		}
		msgs := g.Generate(*n)
		trad := tweetgen.EvaluateNER(msgs, x.ExtractTraditional)
		inf := tweetgen.EvaluateNER(msgs, x.ExtractInformal)
		fmt.Printf("%.2f\ttraditional\t%.3f\t%.3f\t%.3f\n", noise, trad.Precision, trad.Recall, trad.F1())
		fmt.Printf("%.2f\tinformal\t%.3f\t%.3f\t%.3f\n", noise, inf.Precision, inf.Recall, inf.F1())
	}
}
