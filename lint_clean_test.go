package neogeo

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// TestTreeRunsClean is the testdata-drift guard: the goldens under
// internal/analysis/passes/*/testdata pin what each analyzer flags,
// and this test pins the complement — the real tree, as committed,
// produces zero findings under the full suite. An analyzer change
// that starts flagging live code (or a code change that violates an
// invariant) fails here, in `go test`, not first in CI's lint step;
// and a golden that drifts away from how the production code is
// actually shaped gets caught because both sides run from the same
// suite registry.
func TestTreeRunsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	pkgs, err := analysis.LoadPackages(".", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("only %d packages loaded — wrong working directory?", len(pkgs))
	}
	diags, err := analysis.RunPackages(pkgs, suite.Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", analysis.Format(pkgs[0].Fset, d))
	}
	if t.Failed() {
		t.Log("fix the violation or suppress it with a justified //lint:ignore (see docs/INVARIANTS.md)")
	}
}
