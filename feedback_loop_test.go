package neogeo

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/extract"
	"repro/internal/gazetteer"
	"repro/internal/geo"
	"repro/internal/pxml"
)

// TestFeedbackAPI exercises the facade's feedback surface: a verdict on
// an answer result is accepted, applies on flush, and re-ranks the
// answer; bad references fail with the typed sentinels.
func TestFeedbackAPI(t *testing.T) {
	sys, err := New(WithGazetteerNames(300), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()

	// Two one-report hotels in the same city tie on certainty; the
	// earlier record ID ranks first.
	for _, m := range []string{
		"wonderful stay at the Hotel Kilo in Berlin, lovely place",
		"wonderful stay at the Hotel Lima in Berlin, lovely place",
	} {
		if _, err := sys.Ingest(ctx, m, "reporter"); err != nil {
			t.Fatal(err)
		}
	}
	question := "can anyone recommend a good hotel in Berlin?"
	before, err := sys.Ask(ctx, question, "asker")
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Results) < 2 {
		t.Fatalf("want 2 ranked results, got %d", len(before.Results))
	}
	if got := before.Results[0].Fields["Hotel_Name"]; got != "Hotel Kilo" {
		t.Fatalf("pre-feedback leader = %q, want Hotel Kilo", got)
	}

	receipt, err := sys.Feedback(ctx, Feedback{RecordID: before.Results[0].ID, Verdict: VerdictReject, Source: "critic"})
	if err != nil {
		t.Fatalf("Feedback: %v", err)
	}
	if receipt.Seq != 1 {
		t.Errorf("receipt seq = %d, want 1", receipt.Seq)
	}
	if n, err := sys.FlushFeedback(ctx); err != nil || n != 1 {
		t.Fatalf("FlushFeedback = (%d, %v), want (1, nil)", n, err)
	}

	after, err := sys.Ask(ctx, question, "asker")
	if err != nil {
		t.Fatal(err)
	}
	if got := after.Results[0].Fields["Hotel_Name"]; got != "Hotel Lima" {
		t.Errorf("post-reject leader = %q, want Hotel Lima (answer: %s)", got, after.Text)
	}

	st := sys.Stats()
	if st.Feedback.Accepted != 1 || st.Feedback.Applied != 1 || st.Feedback.Rejected != 1 {
		t.Errorf("feedback stats = %+v", st.Feedback)
	}

	// Typed errors.
	if _, err := sys.Feedback(ctx, Feedback{RecordID: 999_999, Verdict: VerdictConfirm}); !errors.Is(err, ErrUnknownRecord) {
		t.Errorf("unknown record: err = %v", err)
	}
	if _, err := sys.Feedback(ctx, Feedback{RecordID: before.Results[0].ID, Verdict: "praise"}); !errors.Is(err, ErrInvalidFeedback) {
		t.Errorf("bad verdict: err = %v", err)
	}
}

// TestFeedbackCrashRecoveryEquivalence is the pinned differential: a
// run that takes feedback, checkpoints in between, takes more feedback
// and then dies without warning (SIGKILL equivalent) must restart into
// a system that answers identically to one that never crashed. The
// pre-checkpoint confirm rides inside the image (covered by the
// feedback watermark, never re-applied); the post-checkpoint reject
// replays from the ledger exactly once.
func TestFeedbackCrashRecoveryEquivalence(t *testing.T) {
	ctx := context.Background()
	run := func(sys *System) {
		t.Helper()
		submitAndDrain(t, sys, crashMessages)
		ans, err := sys.Ask(ctx, crashQuestion, "asker")
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Results) < 2 {
			t.Fatalf("want 2+ results, got %d", len(ans.Results))
		}
		if _, err := sys.Feedback(ctx, Feedback{RecordID: ans.Results[1].ID, Verdict: VerdictConfirm, Source: "fan"}); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.FlushFeedback(ctx); err != nil {
			t.Fatal(err)
		}
	}
	reject := func(sys *System) {
		t.Helper()
		ans, err := sys.Ask(ctx, crashQuestion, "asker")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Feedback(ctx, Feedback{RecordID: ans.Results[0].ID, Verdict: VerdictReject, Source: "critic"}); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.FlushFeedback(ctx); err != nil {
			t.Fatal(err)
		}
	}

	control := buildDurable(t, "", "")
	defer control.Close()
	run(control)
	reject(control)

	dir := t.TempDir()
	dataDir, wal := filepath.Join(dir, "data"), filepath.Join(dir, "queue.wal")
	crashed := buildDurable(t, dataDir, wal)
	run(crashed)
	if _, err := crashed.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	reject(crashed)
	// SIGKILL: no Close, no final checkpoint.

	recovered := buildDurable(t, dataDir, wal)
	defer recovered.Close()
	st := recovered.Stats()
	if st.Feedback.Replayed != 1 || st.Feedback.Pending != 1 {
		t.Fatalf("recovery feedback stats = %+v, want exactly the post-checkpoint reject replayed", st.Feedback)
	}
	if n, err := recovered.FlushFeedback(ctx); err != nil || n != 1 {
		t.Fatalf("replay flush = (%d, %v), want (1, nil)", n, err)
	}
	askEqual(t, control, recovered)

	// Exactly once: flushing again applies nothing.
	if n, _ := recovered.FlushFeedback(ctx); n != 0 {
		t.Errorf("second flush re-applied %d verdicts", n)
	}
}

// TestFeedbackReplayWaitsForWALReplay: feedback about a record whose
// message was acknowledged after the last checkpoint defers at boot
// until the queue WAL re-integrates the record, then applies — the
// recovered system converges to the uninterrupted one.
func TestFeedbackReplayWaitsForWALReplay(t *testing.T) {
	ctx := context.Background()
	control := buildDurable(t, "", "")
	defer control.Close()

	dir := t.TempDir()
	dataDir, wal := filepath.Join(dir, "data"), filepath.Join(dir, "queue.wal")
	crashed := buildDurable(t, dataDir, wal)

	for _, sys := range []*System{control, crashed} {
		submitAndDrain(t, sys, crashMessages)
		ans, err := sys.Ask(ctx, crashQuestion, "asker")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Feedback(ctx, Feedback{RecordID: ans.Results[0].ID, Verdict: VerdictReject, Source: "critic"}); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.FlushFeedback(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// SIGKILL with no checkpoint at all: every record must rebuild from
	// the WAL, and the reject must wait for its record to come back.

	recovered := buildDurable(t, dataDir, wal)
	defer recovered.Close()
	// Before the drain, the record does not exist: the replayed verdict
	// defers rather than dropping.
	if n, _ := recovered.FlushFeedback(ctx); n != 0 {
		t.Fatalf("flush before WAL replay applied %d verdicts", n)
	}
	if st := recovered.Stats(); st.Feedback.Deferred != 1 {
		t.Fatalf("feedback stats before drain = %+v, want 1 deferred", st.Feedback)
	}
	submitAndDrain(t, recovered, nil) // drain the WAL-replayed messages
	if n, _ := recovered.FlushFeedback(ctx); n != 1 {
		t.Fatalf("flush after WAL replay applied %d verdicts, want 1", n)
	}
	askEqual(t, control, recovered)
}

// countryP reads the probability of one named country alternative out
// of a ranked result's probabilistic document.
func countryP(t *testing.T, r Result, country string) float64 {
	t.Helper()
	doc, err := pxml.Unmarshal(r.XML)
	if err != nil {
		t.Fatalf("unmarshal result XML: %v", err)
	}
	n, _ := doc.FirstChild("Country")
	if n == nil {
		t.Fatalf("result %d has no Country distribution: %s", r.ID, r.XML)
	}
	return extract.MuxToDist(n).P(country)
}

// interpretationCountry names the country of the gazetteer reference a
// record resolved to — the "which Paris" behind the record's location.
func interpretationCountry(t *testing.T, sys *System, name string, loc *Location) string {
	t.Helper()
	if loc == nil {
		t.Fatalf("record for %q has no resolved location", name)
	}
	entries := sys.sys.Gaz.Lookup(name)
	if len(entries) < 2 {
		t.Fatalf("%q is not ambiguous in this gazetteer (%d refs)", name, len(entries))
	}
	best := entries[0]
	bestD := best.Location.DistanceMeters(geo.Point{Lat: loc.Lat, Lon: loc.Lon})
	for _, e := range entries[1:] {
		if d := e.Location.DistanceMeters(geo.Point{Lat: loc.Lat, Lon: loc.Lon}); d < bestD {
			best, bestD = e, d
		}
	}
	if c, ok := gazetteer.CountryByCode(best.Country); ok {
		return c.Name
	}
	return best.Country
}

// resultByHotel finds the ranked result for one hotel.
func resultByHotel(t *testing.T, ans *Answer, name string) Result {
	t.Helper()
	for _, r := range ans.Results {
		if r.Fields["Hotel_Name"] == name {
			return r
		}
	}
	t.Fatalf("no result for %q in answer %q", name, ans.Text)
	return Result{}
}

// TestFeedbackReinforcementLoop pins the end-to-end acceptance
// criterion: after N confirmations of one gazetteer interpretation, a
// freshly submitted ambiguous message resolves to that interpretation
// with higher certainty than before the feedback — and the effect
// survives checkpoint + SIGKILL-equivalent recovery.
func TestFeedbackReinforcementLoop(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	dataDir, wal := filepath.Join(dir, "data"), filepath.Join(dir, "queue.wal")
	sys := buildDurable(t, dataDir, wal)

	// "Paris" is the paper's worked ambiguity: 62 gazetteer references.
	submitAndDrain(t, sys, []string{"wonderful stay at the Hotel Meridian in Paris, lovely place"})
	question := "can anyone recommend a good hotel in Paris?"
	ans, err := sys.Ask(ctx, question, "asker")
	if err != nil {
		t.Fatal(err)
	}
	seed := resultByHotel(t, ans, "Hotel Meridian")
	// The interpretation under test is the specific gazetteer reference
	// the pipeline resolved "Paris" to; its certainty is that country's
	// probability in the record's Country distribution.
	country := interpretationCountry(t, sys, "Paris", seed.Location)
	before := countryP(t, seed, country)
	if before <= 0 || before >= 1 {
		t.Fatalf("baseline P(%s) = %v leaves no room to rise", country, before)
	}

	// N users confirm the answer — each confirm reinforces the record's
	// resolved interpretation of "Paris".
	const confirmations = 5
	for i := 0; i < confirmations; i++ {
		if _, err := sys.Feedback(ctx, Feedback{RecordID: seed.ID, Verdict: VerdictConfirm, Source: fmt.Sprintf("fan%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := sys.FlushFeedback(ctx); err != nil || n != confirmations {
		t.Fatalf("flush = (%d, %v), want (%d, nil)", n, err, confirmations)
	}

	// A fresh ambiguous message now resolves the same way, more firmly.
	submitAndDrain(t, sys, []string{"wonderful stay at the Hotel Solstice in Paris, lovely place"})
	ans, err = sys.Ask(ctx, question, "asker")
	if err != nil {
		t.Fatal(err)
	}
	probe := resultByHotel(t, ans, "Hotel Solstice")
	if probe.Location == nil || seed.Location == nil || *probe.Location != *seed.Location {
		t.Fatalf("fresh message resolved to %v, want the confirmed interpretation at %v", probe.Location, seed.Location)
	}
	after := countryP(t, probe, country)
	if after <= before {
		t.Fatalf("P(%s) after %d confirmations = %v, want > baseline %v", country, confirmations, after, before)
	}

	// The reinforcement survives checkpoint + crash: a message submitted
	// to the recovered process still resolves with the boost.
	if _, err := sys.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// SIGKILL: no Close.
	recovered := buildDurable(t, dataDir, wal)
	defer recovered.Close()
	submitAndDrain(t, recovered, []string{"wonderful stay at the Hotel Equinox in Paris, lovely place"})
	ans, err = recovered.Ask(ctx, question, "asker")
	if err != nil {
		t.Fatal(err)
	}
	recovered2 := resultByHotel(t, ans, "Hotel Equinox")
	if recovered2.Location == nil || *recovered2.Location != *seed.Location {
		t.Errorf("recovered system resolved to %v, want the confirmed interpretation at %v", recovered2.Location, seed.Location)
	}
	if recP := countryP(t, recovered2, country); recP <= before {
		t.Errorf("after recovery P(%s) = %v, want > pre-feedback %v", country, recP, before)
	}
	if !strings.Contains(ans.Text, "Hotel") {
		t.Errorf("uninformative recovered answer: %s", ans.Text)
	}
}
