package neogeo

import (
	"errors"
	"fmt"

	"repro/internal/coordinator"
)

// Sentinel errors callers (and the HTTP serving layer) branch on with
// errors.Is instead of matching error strings.
var (
	// ErrNotAQuestion reports that a message handed to Ask was classified
	// informative, not as a request. The concrete error is a
	// *NotAQuestionError carrying the classification.
	ErrNotAQuestion = errors.New("neogeo: message is not a question")

	// ErrQueueClosed reports a Submit or Ingest after Close.
	ErrQueueClosed = errors.New("neogeo: queue closed")

	// ErrNoDataDir reports a Checkpoint on a system built without
	// WithDataDir: there is nowhere durable to write the image.
	ErrNoDataDir = errors.New("neogeo: no data directory configured")

	// ErrUnknownRecord reports Feedback about a record ID that was never
	// allocated — the reference is bogus.
	ErrUnknownRecord = errors.New("neogeo: unknown record")

	// ErrStaleAnswer reports Feedback about a record that existed when
	// its answer was generated but has since been deleted (certainty
	// decay): the answer is stale, ask again.
	ErrStaleAnswer = errors.New("neogeo: answer is stale")

	// ErrInvalidFeedback reports a malformed Feedback verdict (unknown
	// verdict, correction without a replacement, partial location).
	ErrInvalidFeedback = errors.New("neogeo: invalid feedback")

	// ErrUnknownSubscription reports a subscription ID that was never
	// issued or was already cancelled.
	ErrUnknownSubscription = errors.New("neogeo: unknown subscription")

	// ErrStreamBusy reports an OpenSubscription on a subscription whose
	// stream another consumer already holds.
	ErrStreamBusy = errors.New("neogeo: subscription stream busy")

	// ErrSubscriptionClosed reports a read on a cancelled subscription's
	// stream, or a Subscribe after Close.
	ErrSubscriptionClosed = errors.New("neogeo: subscription closed")

	// ErrInvalidSubscription reports a malformed Subscribe spec (neither
	// or both of key and center, bad coordinates, non-positive radius).
	ErrInvalidSubscription = errors.New("neogeo: invalid subscription")
)

// NotAQuestionError is the concrete error behind ErrNotAQuestion: what
// the classifier decided about the message and with what confidence, so
// a caller can inspect what the classifier saw — and, say, offer to
// submit the message as a report instead.
type NotAQuestionError struct {
	// Type is the classified message type (TypeInformative).
	Type MessageType
	// Probability is the classifier's confidence in that type.
	Probability float64
}

func (e *NotAQuestionError) Error() string {
	return fmt.Sprintf("neogeo: message classified %s (p=%.2f), not a question", e.Type, e.Probability)
}

// Unwrap makes errors.Is(err, ErrNotAQuestion) hold.
func (e *NotAQuestionError) Unwrap() error { return ErrNotAQuestion }

// mapAskErr rewrites the coordinator's typed classification error onto
// the facade's, so callers branch without importing internal packages.
func mapAskErr(err error) error {
	var naq *coordinator.NotAQuestionError
	if errors.As(err, &naq) {
		return &NotAQuestionError{Type: MessageType(naq.Type), Probability: naq.TypeP}
	}
	return err
}
